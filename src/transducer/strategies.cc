#include "transducer/strategies.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace calm::transducer {

namespace {

// Relation-name plumbing shared by the strategies: per input relation R we
// create renamed companions (message carrying R-facts, memory of received
// R-facts, markers). The maps go companion-id -> original-id and back.
struct RelMap {
  std::map<uint32_t, uint32_t> to_original;
  std::map<uint32_t, uint32_t> from_original;

  uint32_t Make(const std::string& prefix, uint32_t original) {
    uint32_t id = InternName(prefix + NameOf(original));
    to_original[id] = original;
    from_original[original] = id;
    return id;
  }
  uint32_t Of(uint32_t original) const { return from_original.at(original); }
};

// Adds `prefix + name(R)` relations (same arity + `extra`) to `target` for
// every relation of `in`, recording the mapping.
void AddCompanions(const Schema& in, const std::string& prefix, int extra,
                   Schema* target, RelMap* map) {
  for (const RelationDecl& r : in.relations()) {
    uint32_t id = map->Make(prefix, r.name);
    (void)target->AddRelation(
        RelationDecl(id, r.arity + static_cast<uint32_t>(extra)));
  }
}

// Collects input-relation facts stored under companion relations back into
// original-name facts: state[m_E(t)] -> E(t).
void DecodeInto(const Instance& store, const RelMap& map, Instance* out) {
  for (const auto& [companion, original] : map.to_original) {
    for (const Tuple& t : store.TuplesOf(companion)) {
      out->Insert(Fact(original, t));
    }
  }
}

// The node's own id from the system relation Id.
Value SelfId(const Instance& system) {
  const TupleSet& ids = system.TuplesOf(InternName("Id"));
  return ids.empty() ? Value() : (*ids.begin())[0];
}

// ---------------------------------------------------------------------------
// Broadcast strategy (M).
// ---------------------------------------------------------------------------

class BroadcastTransducer : public Transducer {
 public:
  explicit BroadcastTransducer(const Query* query) : query_(query) {
    schema_.in = query->input_schema();
    schema_.out = query->output_schema();
    AddCompanions(schema_.in, "m_", 0, &schema_.msg, &msg_);
    AddCompanions(schema_.in, "got_", 0, &schema_.mem, &got_);
    AddCompanions(schema_.in, "sent_", 0, &schema_.mem, &sent_);
  }

  const TransducerSchema& schema() const override { return schema_; }
  std::string name() const override { return "broadcast(" + query_->name() + ")"; }

  Result<StepOutput> Step(const StepInput& in) const override {
    StepOutput out;

    // Send every not-yet-broadcast local fact; mark it sent.
    in.local_input.ForEachFact([&](uint32_t rel, const Tuple& t) {
      Fact marker(sent_.Of(rel), t);
      if (!in.state.Contains(marker)) {
        out.sends.Insert(Fact(msg_.Of(rel), t));
        out.insertions.Insert(marker);
      }
    });

    // Store received facts.
    in.messages.ForEachFact([&](uint32_t rel, const Tuple& t) {
      out.insertions.Insert(Fact(got_.Of(msg_.to_original.at(rel)), t));
    });

    // Output Q over everything known (local + stored + just received).
    Instance known = in.local_input;
    DecodeInto(in.state, got_, &known);
    in.messages.ForEachFact([&](uint32_t rel, const Tuple& t) {
      known.Insert(Fact(msg_.to_original.at(rel), t));
    });
    Result<Instance> q = query_->Eval(known);
    if (!q.ok()) return q.status();
    out.output = std::move(q).value();
    return out;
  }

 private:
  const Query* query_;
  TransducerSchema schema_;
  RelMap msg_, got_, sent_;
};

// ---------------------------------------------------------------------------
// Absence strategy (Mdistinct) — proof of Theorem 4.3.
// ---------------------------------------------------------------------------

class AbsenceTransducer : public Transducer {
 public:
  explicit AbsenceTransducer(const Query* query) : query_(query) {
    schema_.in = query->input_schema();
    schema_.out = query->output_schema();
    AddCompanions(schema_.in, "m_", 0, &schema_.msg, &msg_);
    AddCompanions(schema_.in, "a_", 0, &schema_.msg, &msg_abs_);
    AddCompanions(schema_.in, "got_", 0, &schema_.mem, &got_);
    AddCompanions(schema_.in, "abs_", 0, &schema_.mem, &abs_);
    AddCompanions(schema_.in, "sentf_", 0, &schema_.mem, &sent_fact_);
    AddCompanions(schema_.in, "senta_", 0, &schema_.mem, &sent_abs_);
    // Nodes advertise their own identifier so that, in the no-All model,
    // responsible nodes still learn every node id and can broadcast
    // absences of facts mentioning it (needed for completeness).
    (void)schema_.msg.AddRelation("nida", 1);
    (void)schema_.mem.AddRelation("nids", 1);
    (void)schema_.mem.AddRelation("sentid", 1);
  }

  const TransducerSchema& schema() const override { return schema_; }
  std::string name() const override { return "absence(" + query_->name() + ")"; }

  Result<StepOutput> Step(const StepInput& in) const override {
    StepOutput out;

    // Advertise own node id once (see constructor comment).
    Value self = SelfId(in.system);
    if (!in.state.Contains(Fact("sentid", {self}))) {
      out.sends.Insert(Fact("nida", {self}));
      out.insertions.Insert(Fact("sentid", {self}));
      out.insertions.Insert(Fact("nids", {self}));
    }

    // Broadcast local input facts once.
    in.local_input.ForEachFact([&](uint32_t rel, const Tuple& t) {
      Fact marker(sent_fact_.Of(rel), t);
      if (!in.state.Contains(marker)) {
        out.sends.Insert(Fact(msg_.Of(rel), t));
        out.insertions.Insert(marker);
      }
    });

    // Store received facts, absences, and node ids.
    in.messages.ForEachFact([&](uint32_t rel, const Tuple& t) {
      if (rel == InternName("nida")) {
        out.insertions.Insert(Fact("nids", t));
        return;
      }
      auto fact_it = msg_.to_original.find(rel);
      if (fact_it != msg_.to_original.end()) {
        out.insertions.Insert(Fact(got_.Of(fact_it->second), t));
      }
      auto abs_it = msg_abs_.to_original.find(rel);
      if (abs_it != msg_abs_.to_original.end()) {
        out.insertions.Insert(Fact(abs_.Of(abs_it->second), t));
      }
    });

    // Facts and absences known after this step.
    Instance known = in.local_input;
    DecodeInto(in.state, got_, &known);
    Instance absent;
    DecodeInto(in.state, abs_, &absent);
    in.messages.ForEachFact([&](uint32_t rel, const Tuple& t) {
      auto fact_it = msg_.to_original.find(rel);
      if (fact_it != msg_.to_original.end()) {
        known.Insert(Fact(fact_it->second, t));
      }
      auto abs_it = msg_abs_.to_original.find(rel);
      if (abs_it != msg_abs_.to_original.end()) {
        absent.Insert(Fact(abs_it->second, t));
      }
    });

    // MyAdom values A (includes node ids and everything received).
    std::vector<Value> adom;
    for (const Tuple& t : in.system.TuplesOf(InternName("MyAdom"))) {
      adom.push_back(t[0]);
    }

    // Derive + broadcast absences: tuples over A that this node is
    // responsible for (policy_R present) but that are absent locally, and
    // check completeness: every tuple over A is known present or absent.
    bool complete = true;
    for (const RelationDecl& r : schema_.in.relations()) {
      uint32_t policy_rel = PolicyRelationId(r.name);
      ForEachTuple(adom, r.arity, [&](const Tuple& t) {
        Fact fact(r.name, t);
        bool present = known.Contains(fact);
        bool known_absent = absent.Contains(Fact(r.name, t));
        if (!present && !known_absent &&
            in.system.Contains(Fact(policy_rel, t)) &&
            !in.local_input.Contains(fact)) {
          // Responsible and locally missing => globally absent.
          known_absent = true;
          absent.Insert(fact);
          out.insertions.Insert(Fact(abs_.Of(r.name), t));
          Fact marker(sent_abs_.Of(r.name), t);
          if (!in.state.Contains(marker)) {
            out.sends.Insert(Fact(msg_abs_.Of(r.name), t));
            out.insertions.Insert(marker);
          }
        }
        if (!present && !known_absent) complete = false;
      });
    }

    if (complete) {
      Result<Instance> q = query_->Eval(known);
      if (!q.ok()) return q.status();
      out.output = std::move(q).value();
    }
    return out;
  }

 private:
  // Invokes fn for every tuple over `values`^arity.
  template <typename Fn>
  static void ForEachTuple(const std::vector<Value>& values, uint32_t arity,
                           Fn&& fn) {
    if (values.empty()) return;
    std::vector<size_t> idx(arity, 0);
    while (true) {
      Tuple t;
      t.reserve(arity);
      for (size_t i : idx) t.push_back(values[i]);
      fn(t);
      size_t pos = arity;
      while (true) {
        if (pos == 0) return;
        --pos;
        if (++idx[pos] < values.size()) break;
        idx[pos] = 0;
      }
    }
  }

  const Query* query_;
  TransducerSchema schema_;
  RelMap msg_, msg_abs_, got_, abs_, sent_fact_, sent_abs_;
};

// ---------------------------------------------------------------------------
// Domain-request strategy (Mdisjoint) — proof of Theorem 4.4.
// ---------------------------------------------------------------------------

class DomainRequestTransducer : public Transducer {
 public:
  explicit DomainRequestTransducer(const Query* query) : query_(query) {
    schema_.in = query->input_schema();
    schema_.out = query->output_schema();
    // Messages: adv(a); req(x, a); ok(x, a); per-R transfer x_R(x, t) and
    // ack k_R(x, t).
    (void)schema_.msg.AddRelation("adv", 1);
    (void)schema_.msg.AddRelation("req", 2);
    (void)schema_.msg.AddRelation("ok", 2);
    AddCompanions(schema_.in, "x_", 1, &schema_.msg, &msg_xfer_);
    AddCompanions(schema_.in, "k_", 1, &schema_.msg, &msg_ack_);
    // Memory.
    (void)schema_.mem.AddRelation("vals", 1);    // known domain values
    (void)schema_.mem.AddRelation("senta", 1);   // advertised own values
    (void)schema_.mem.AddRelation("sentr", 1);   // requested values
    (void)schema_.mem.AddRelation("okd", 1);     // values OK'd to me
    (void)schema_.mem.AddRelation("reqs", 2);    // stored foreign requests
    (void)schema_.mem.AddRelation("sento", 2);   // ok(x, a) already sent
    AddCompanions(schema_.in, "got_", 0, &schema_.mem, &got_);
    AddCompanions(schema_.in, "sx_", 1, &schema_.mem, &sent_xfer_);
    AddCompanions(schema_.in, "ka_", 1, &schema_.mem, &acked_);
    AddCompanions(schema_.in, "sk_", 0, &schema_.mem, &sent_ack_);
  }

  const TransducerSchema& schema() const override { return schema_; }
  std::string name() const override {
    return "domain-request(" + query_->name() + ")";
  }

  Result<StepOutput> Step(const StepInput& in) const override {
    StepOutput out;
    Value self = SelfId(in.system);
    uint32_t rel_adv = InternName("adv");
    uint32_t rel_req = InternName("req");
    uint32_t rel_ok = InternName("ok");

    // -- Incorporate received messages into memory.
    in.messages.ForEachFact([&](uint32_t rel, const Tuple& t) {
      if (rel == rel_adv) {
        out.insertions.Insert(Fact("vals", t));
      } else if (rel == rel_req) {
        out.insertions.Insert(Fact("reqs", t));
      } else if (rel == rel_ok) {
        if (t[0] == self) out.insertions.Insert(Fact("okd", {t[1]}));
      } else {
        auto xfer_it = msg_xfer_.to_original.find(rel);
        if (xfer_it != msg_xfer_.to_original.end() && t[0] == self) {
          Tuple bare(t.begin() + 1, t.end());
          out.insertions.Insert(Fact(got_.Of(xfer_it->second), bare));
        }
        auto ack_it = msg_ack_.to_original.find(rel);
        if (ack_it != msg_ack_.to_original.end()) {
          // Record the ack (any node may hold the matching transfer).
          out.insertions.Insert(Fact(acked_.Of(ack_it->second), t));
        }
      }
    });

    // -- Advertise own active domain once.
    for (Value v : in.local_input.ActiveDomain()) {
      if (!in.state.Contains(Fact("senta", {v}))) {
        out.sends.Insert(Fact(rel_adv, {v}));
        out.insertions.Insert(Fact("senta", {v}));
      }
    }

    // -- Acks for transfers received this step.
    in.messages.ForEachFact([&](uint32_t rel, const Tuple& t) {
      auto xfer_it = msg_xfer_.to_original.find(rel);
      if (xfer_it == msg_xfer_.to_original.end() || t[0] != self) return;
      Tuple bare(t.begin() + 1, t.end());
      Fact marker(sent_ack_.Of(xfer_it->second), bare);
      if (!in.state.Contains(marker)) {
        Tuple addressed = t;  // k_R(self, tuple): t already starts with self
        out.sends.Insert(Fact(msg_ack_.Of(xfer_it->second), addressed));
        out.insertions.Insert(marker);
      }
    });

    // -- Serve stored requests (including ones stored just now).
    Instance requests;
    for (const Tuple& t : in.state.TuplesOf(InternName("reqs"))) {
      requests.Insert(Fact("reqs", t));
    }
    in.messages.ForEachFact([&](uint32_t rel, const Tuple& t) {
      if (rel == rel_req) requests.Insert(Fact("reqs", t));
    });
    requests.ForEachFact([&](uint32_t, const Tuple& rt) {
      Value target = rt[0];
      Value value = rt[1];
      if (target == self) return;
      if (!Responsible(in.system, value)) return;
      // Transfer every local fact containing `value` (once per target+fact),
      // then OK once all of them are acked.
      bool all_acked = true;
      in.local_input.ForEachFact([&](uint32_t rel, const Tuple& t) {
        bool contains = false;
        for (Value v : t) contains = contains || v == value;
        if (!contains) return;
        Tuple addressed;
        addressed.reserve(t.size() + 1);
        addressed.push_back(target);
        addressed.append(t.begin(), t.end());
        Fact sent_marker(sent_xfer_.Of(rel), addressed);
        if (!in.state.Contains(sent_marker)) {
          out.sends.Insert(Fact(msg_xfer_.Of(rel), addressed));
          out.insertions.Insert(sent_marker);
        }
        Fact ack(acked_.Of(rel), addressed);
        if (!in.state.Contains(ack) && !out.insertions.Contains(ack)) {
          all_acked = false;
        }
      });
      if (all_acked) {
        Fact ok_marker("sento", {target, value});
        if (!in.state.Contains(ok_marker)) {
          out.sends.Insert(Fact(rel_ok, {target, value}));
          out.insertions.Insert(ok_marker);
        }
      }
    });

    // -- Issue requests for known values I am not responsible for.
    std::set<Value> known_values;
    for (const Tuple& t : in.system.TuplesOf(InternName("MyAdom"))) {
      known_values.insert(t[0]);
    }
    for (Value v : known_values) {
      if (Responsible(in.system, v)) continue;
      if (in.state.Contains(Fact("sentr", {v}))) continue;
      out.sends.Insert(Fact(rel_req, {self, v}));
      out.insertions.Insert(Fact("sentr", {v}));
    }

    // -- Completeness: every known value is owned or OK'd.
    bool complete = true;
    auto okd = [&](Value v) {
      return in.state.Contains(Fact("okd", {v})) ||
             out.insertions.Contains(Fact("okd", {v}));
    };
    for (Value v : known_values) {
      if (!Responsible(in.system, v) && !okd(v)) {
        complete = false;
        break;
      }
    }

    if (complete) {
      Instance known = in.local_input;
      DecodeInto(in.state, got_, &known);
      out.insertions.ForEachFact([&](uint32_t rel, const Tuple& t) {
        auto it = got_.to_original.find(rel);
        if (it != got_.to_original.end()) known.Insert(Fact(it->second, t));
      });
      Result<Instance> q = query_->Eval(known);
      if (!q.ok()) return q.status();
      out.output = std::move(q).value();
    }
    return out;
  }

 private:
  // Responsible for value a under the domain assignment iff some
  // policy_R(a, ..., a) is shown (proof of Theorem 4.4).
  bool Responsible(const Instance& system, Value a) const {
    for (const RelationDecl& r : schema_.in.relations()) {
      Tuple t(r.arity, a);
      if (system.Contains(Fact(PolicyRelationId(r.name), t))) return true;
    }
    return false;
  }

  const Query* query_;
  TransducerSchema schema_;
  RelMap msg_xfer_, msg_ack_, got_, sent_xfer_, acked_, sent_ack_;
};

// ---------------------------------------------------------------------------
// Racy election (coordinating; the confluence oracle's negative control).
// ---------------------------------------------------------------------------

class RacyElectionTransducer : public Transducer {
 public:
  RacyElectionTransducer() {
    (void)schema_.in.AddRelation("P", 1);
    (void)schema_.out.AddRelation("First", 1);
    (void)schema_.msg.AddRelation("cast", 1);
    (void)schema_.mem.AddRelation("sentc", 1);
    (void)schema_.mem.AddRelation("won", 1);
  }

  const TransducerSchema& schema() const override { return schema_; }
  std::string name() const override { return "racy-election"; }

  Result<StepOutput> Step(const StepInput& in) const override {
    StepOutput out;

    // Cast every local P-fact once.
    for (const Tuple& t : in.local_input.TuplesOf(InternName("P"))) {
      Fact marker(InternName("sentc"), t);
      if (!in.state.Contains(marker)) {
        out.sends.Insert(Fact(InternName("cast"), t));
        out.insertions.Insert(marker);
      }
    }

    // Commit to the minimum value among the casts in the first delivery
    // that contains any. Deterministic per step — the nondeterminism is in
    // *which* casts share that first delivery, i.e. the schedule.
    const TupleSet& casts = in.messages.TuplesOf(InternName("cast"));
    if (!casts.empty() && in.state.TuplesOf(InternName("won")).empty()) {
      const Tuple& winner = *casts.begin();  // sorted: the minimum value
      out.output.Insert(Fact(InternName("First"), winner));
      out.insertions.Insert(Fact(InternName("won"), winner));
    }
    return out;
  }

 private:
  TransducerSchema schema_;
};

}  // namespace

std::unique_ptr<Transducer> MakeBroadcastTransducer(const Query* query) {
  return std::make_unique<BroadcastTransducer>(query);
}
std::unique_ptr<Transducer> MakeAbsenceTransducer(const Query* query) {
  return std::make_unique<AbsenceTransducer>(query);
}
std::unique_ptr<Transducer> MakeDomainRequestTransducer(const Query* query) {
  return std::make_unique<DomainRequestTransducer>(query);
}
std::unique_ptr<Transducer> MakeRacyElectionTransducer() {
  return std::make_unique<RacyElectionTransducer>();
}

}  // namespace calm::transducer
