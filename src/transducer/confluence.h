#ifndef CALM_TRANSDUCER_CONFLUENCE_H_
#define CALM_TRANSDUCER_CONFLUENCE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/json.h"
#include "net/fault.h"
#include "transducer/network.h"
#include "transducer/runner.h"

namespace calm::transducer {

// ---------------------------------------------------------------------------
// Confluence oracle (Section 4.1.3): a coordination-free transducer network
// must reach the *same* quiescent output under every fair run. The oracle
// hammers one (transducer, policy, input) with N seeded fault plans crossed
// with every scheduler, asserts output equality against the faultless
// round-robin reference, and — on divergence — delta-debugs the fault
// schedule down to a locally minimal, deterministically replayable witness.
// ---------------------------------------------------------------------------

// Builds a fresh, Initialize()d network for one run. Called once per run;
// must be safe to call concurrently (each call returns an independent
// network; shared transducer/policy/query objects are only read).
using NetworkFactory =
    std::function<Result<std::unique_ptr<TransducerNetwork>>()>;

struct ConfluenceOptions {
  // Seeded fault plans per scheduler kind (total runs = plans x schedulers).
  size_t fault_plans = 16;
  uint64_t seed = 1;
  net::FaultProfile profile = net::FaultProfile::Chaos();
  std::vector<RunOptions::SchedulerKind> schedulers = {
      RunOptions::SchedulerKind::kRoundRobin,
      RunOptions::SchedulerKind::kRandom,
      RunOptions::SchedulerKind::kAdversarialDelay};
  size_t max_transitions = 200000;
  uint64_t max_delay = 16;     // fairness bound handed to the schedulers
  bool shrink = true;          // delta-debug diverging fault schedules
  size_t max_divergences = 4;  // stop collecting witnesses after this many
  size_t threads = 0;          // 0 = serial; otherwise ParallelFor over runs
};

// One divergence, shrunk (when requested) and re-run for its final trace.
struct DivergenceWitness {
  RunOptions::SchedulerKind scheduler = RunOptions::SchedulerKind::kRoundRobin;
  uint64_t plan_seed = 0;
  size_t original_events = 0;  // decision-log length before shrinking
  std::vector<net::FaultEvent> events;  // the (shrunk) fault schedule
  Instance observed;                    // diverging output
  bool quiesced = true;  // false: the divergence is a missed quiescence
  std::vector<net::Scheduler::Choice> choices;  // schedule of the final run
  net::FaultStats fault_stats;
};

struct ConfluenceReport {
  Instance reference;  // faultless round-robin output
  size_t runs = 0;
  size_t faulted_runs = 0;  // runs whose plan injected at least one fault
  net::FaultStats total_faults;
  std::vector<DivergenceWitness> divergences;
  bool confluent() const { return divergences.empty(); }
};

// Runs the oracle. Errors only on infrastructure failure (factory error, a
// run rejected by the network); divergence is reported, not an error.
Result<ConfluenceReport> CheckConfluence(const NetworkFactory& make_network,
                                         const ConfluenceOptions& options);

// ddmin over a fault-event schedule: repeatedly re-runs `base` (with
// `faults` replaced by Scripted(subset)) and keeps the smallest subset that
// still diverges from `expected`. The result is 1-minimal: removing any
// single remaining event restores confluence. `max_runs` bounds the search.
Result<std::vector<net::FaultEvent>> ShrinkDivergence(
    const NetworkFactory& make_network, const Instance& expected,
    const RunOptions& base, const std::vector<net::FaultEvent>& events,
    size_t max_runs = 512);

// ---------------------------------------------------------------------------
// Record/replay traces. A trace pins everything a run depends on — scenario
// identity, input, scheduler, fault schedule — so a confluence failure ships
// as a small JSON artifact that re-executes deterministically.
// ---------------------------------------------------------------------------

struct TraceRecord {
  int version = 1;
  std::string scenario;  // catalog name (bench/bench_fault_confluence.cc)
  std::string policy;    // "hash" | "attr-hash" | "domain-hash" | "all-to-one"
  uint64_t policy_salt = 0;
  std::string model;  // ModelOptions::ToString()
  std::vector<uint64_t> nodes;  // node ids (integer domain values)
  std::vector<Fact> input;      // the distributed input instance
  RunOptions::SchedulerKind scheduler = RunOptions::SchedulerKind::kRoundRobin;
  uint64_t scheduler_seed = 0;
  double deliver_prob = 0.5;
  uint64_t max_delay = 16;
  size_t max_transitions = 200000;
  std::vector<net::FaultEvent> events;
  std::vector<net::Scheduler::Choice> choices;  // for inspection/debugging
  std::vector<Fact> expected_output;            // faultless reference
  std::vector<Fact> observed_output;            // what the diverging run made
};

// The RunOptions a trace describes (faults excluded; attach a Scripted plan).
RunOptions TraceRunOptions(const TraceRecord& trace);

// JSON round-trip. Serialization requires every value in facts to be an
// integer (symbols have no stable cross-process id) and errors otherwise.
Result<std::string> SerializeTrace(const TraceRecord& trace);
Result<TraceRecord> ParseTrace(const std::string& json_text);

// Re-executes `trace` on a network from `make_network` with the scripted
// fault schedule and reports whether the recorded observation reproduced.
struct ReplayOutcome {
  RunResult result;
  bool reproduced_output = false;   // run output == trace.observed_output
  bool reproduced_choices = false;  // schedule matched (when trace has one)
  bool diverged = false;            // run output != trace.expected_output
};
Result<ReplayOutcome> ReplayTrace(const NetworkFactory& make_network,
                                  const TraceRecord& trace);

}  // namespace calm::transducer

#endif  // CALM_TRANSDUCER_CONFLUENCE_H_
