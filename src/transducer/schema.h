#ifndef CALM_TRANSDUCER_SCHEMA_H_
#define CALM_TRANSDUCER_SCHEMA_H_

#include <string>

#include "base/schema.h"
#include "base/status.h"

namespace calm::transducer {

// Which system relations a transition exposes (Sections 4.1.2, 4.3):
//   * the original model of [13]: Id + All, no policy relations;
//   * the policy-aware model of [32]: adds MyAdom and policy_R;
//   * the no-All variants (Theorem 4.5): All removed, and the ambient set A
//     is {x} + adom(J) instead of N + adom(J);
//   * oblivious transducers: neither Id nor All.
struct ModelOptions {
  bool policy_aware = true;
  bool expose_all = true;
  bool expose_id = true;

  static ModelOptions Original() { return {false, true, true}; }
  static ModelOptions PolicyAware() { return {true, true, true}; }
  static ModelOptions PolicyAwareNoAll() { return {true, false, true}; }
  static ModelOptions Oblivious() { return {false, false, false}; }

  std::string ToString() const;
};

// A transducer schema: the quintuple (in, out, msg, mem, sys) with disjoint
// relation names; sys is derived from `in` and the model options.
struct TransducerSchema {
  Schema in;
  Schema out;
  Schema msg;
  Schema mem;

  // Validates name-disjointness (including against the system names).
  Status Validate(const ModelOptions& model) const;

  // The system schema: Id/1, All/1, MyAdom/1, policy_<R>/k per R/k in `in`,
  // filtered by the model options.
  Schema SystemSchema(const ModelOptions& model) const;

  // in + out + msg + mem + sys: the input schema of the four queries.
  Result<Schema> QueryInputSchema(const ModelOptions& model) const;
};

// Name of the policy relation for input relation `relation` ("policy_E").
// The paper writes policy_R; [32] called these local_R.
std::string PolicyRelationName(uint32_t relation);
uint32_t PolicyRelationId(uint32_t relation);

// Interned ids of the fixed system relations.
uint32_t IdRelation();
uint32_t AllRelation();
uint32_t MyAdomRelation();

}  // namespace calm::transducer

#endif  // CALM_TRANSDUCER_SCHEMA_H_
