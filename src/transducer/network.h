#ifndef CALM_TRANSDUCER_NETWORK_H_
#define CALM_TRANSDUCER_NETWORK_H_

#include <map>
#include <vector>

#include "base/instance.h"
#include "base/status.h"
#include "net/fault.h"
#include "net/message_buffer.h"
#include "transducer/policy.h"
#include "transducer/schema.h"
#include "transducer/transducer.h"

namespace calm::transducer {

// Delivery semantics for the simulator (arXiv:1405.7264's two models):
//   * kAsync — Section 4.1.3's fair runs: sends enter receiver buffers
//     immediately; a scheduler picks arbitrary submultisets to deliver.
//   * kBsp — bulk-synchronous supersteps: sends made during superstep k
//     are staged, the barrier (BspBarrier) flushes them, and they become
//     deliverable exactly at superstep k + 1. Coordination-free networks
//     must compute the same quiescent output under both.
enum class NetworkSemantics { kAsync, kBsp };

// "async", "bsp".
const char* NetworkSemanticsName(NetworkSemantics semantics);

// A transducer network (N, Upsilon, Pi, P) instantiated on an input: holds
// the distributed input dist_P(I), per-node states and message buffers, and
// implements the exact transition semantics of Section 4.1.3.
class TransducerNetwork {
 public:
  // `transducer` and `policy` must outlive the network.
  TransducerNetwork(Network nodes, const Transducer* transducer,
                    const DistributionPolicy* policy, ModelOptions model);

  // Distributes `input` and resets to the start configuration. Errors if the
  // schema is invalid, the network is empty, or the policy is required to be
  // domain-guided but is not (checked by callers where relevant).
  Status Initialize(const Instance& input);

  // One transition with active node `node`, delivering the buffer entries at
  // `delivery_indices` (empty = heartbeat). Updates state and buffers.
  // `delivery_indices` must be strictly increasing and in range for the
  // node's buffer *at the start of the transition* — anything else (a buggy
  // scheduler or fault plan) is rejected with InvalidArgument instead of
  // reaching undefined behaviour in the buffer.
  Status StepNode(Value node, const std::vector<size_t>& delivery_indices);

  // Convenience: heartbeat transition at `node`.
  Status Heartbeat(Value node) { return StepNode(node, {}); }

  const Network& nodes() const { return nodes_; }
  const ModelOptions& model() const { return model_; }
  const Instance& local_input(Value node) const;
  const Instance& state(Value node) const;
  const net::MessageBuffer& buffer(Value node) const;
  net::MessageBuffer& mutable_buffer(Value node);
  // All buffers, indexed like nodes() — the scheduler's view, exposed
  // directly so the runner need not copy the entry lists every transition.
  const std::vector<net::MessageBuffer>& buffers() const { return buffers_; }

  // out(R): union over nodes of the state restricted to the out schema.
  Instance GlobalOutput() const;

  // Attaches a fault-injection channel between the send path and the
  // buffers (nullptr = perfect network). The plan is (re)bound to this
  // network immediately and on every Initialize; it must outlive the runs.
  void set_fault_plan(net::FaultPlan* faults);
  net::FaultPlan* fault_plan() const { return faults_; }

  // Switches between async and bulk-synchronous delivery. Under kBsp,
  // StepNode stages every send instead of enqueueing it; the stage drains
  // into the receiver buffers only at BspBarrier, so a message sent during
  // superstep k is deliverable exactly from superstep k + 1 on. BSP runs
  // model a perfect network: StepNode rejects the combination of kBsp and
  // an attached fault plan (the fault channel's redelivery ticks have no
  // superstep meaning).
  void set_semantics(NetworkSemantics semantics) { semantics_ = semantics; }
  NetworkSemantics semantics() const { return semantics_; }

  // The superstep barrier: flushes every staged send into its receiver's
  // buffer. No-op under kAsync (nothing is ever staged).
  void BspBarrier();

  // Messages staged since the last barrier (kBsp only; 0 under kAsync).
  size_t StagedCount() const;

  // True when every buffer is empty (candidate quiescence; the runner also
  // requires a no-op round of heartbeats).
  bool BuffersEmpty() const;

  // BuffersEmpty plus: the fault channel holds no dropped/partitioned
  // messages awaiting redelivery, no crashed node still awaits its atomic
  // inbox replay, and no send sits staged behind the BSP barrier. The
  // runner's quiescence test — a message sitting in a retransmit queue, a
  // pending recovery, or the superstep stage is still in flight.
  bool Idle() const;

  // Whether the last StepNode changed any state or sent any message.
  bool last_step_changed() const { return last_step_changed_; }

  const net::RunStats& stats() const { return stats_; }

  // The system facts node `node` would see right now (exposed for tests).
  Result<Instance> SystemFactsFor(Value node, const Instance& delivered) const;

 private:
  size_t IndexOf(Value node) const;
  // Enqueues a (possibly fault-injected) delivery into its receiver buffer.
  void Inject(const net::FaultPlan::Delivery& delivery);

  Network nodes_;
  const Transducer* transducer_;
  const DistributionPolicy* policy_;
  ModelOptions model_;

  net::FaultPlan* faults_ = nullptr;  // borrowed; nullptr = perfect network
  NetworkSemantics semantics_ = NetworkSemantics::kAsync;
  // kBsp: sends of the current superstep, per receiver, awaiting the
  // barrier. Flushed into buffers_ by BspBarrier.
  std::vector<std::vector<Fact>> staged_;
  // Per-node pending recovery delivery: a crashed node's durable inbox,
  // merged atomically into its next transition (write-ahead-log replay).
  std::vector<Instance> recovery_;
  std::map<Value, Instance> local_inputs_;
  std::map<Value, Instance> states_;  // over out + mem
  std::vector<net::MessageBuffer> buffers_;
  net::RunStats stats_;
  bool last_step_changed_ = false;
  uint64_t tick_ = 0;
};

}  // namespace calm::transducer

#endif  // CALM_TRANSDUCER_NETWORK_H_
