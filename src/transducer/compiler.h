#ifndef CALM_TRANSDUCER_COMPILER_H_
#define CALM_TRANSDUCER_COMPILER_H_

#include <string>

#include "datalog/ast.h"
#include "transducer/datalog_transducer.h"

namespace calm::transducer {

// Compiles a *positive* Datalog(!=) program into a coordination-free
// broadcast transducer — the constructive direction of Corollary 4.6
// (F0 = M), expressed entirely in Datalog:
//
//   Ymsg:  m__R/k     per edb relation R/k      (the shipped facts)
//   Ymem:  got__R/k   (received facts), sent__R/k (broadcast markers)
//   Qsnd:  m__R(v..) :- R(v..), !sent__R(v..).
//   Qins:  got__R(v..) :- m__R(v..).   sent__R(v..) :- R(v..).
//   Qout:  all__R collects R + got__R + m__R, then the user program runs
//          with every edb atom R renamed to all__R.
//
// Positivity guarantees monotonicity, so eagerly emitted outputs are never
// wrong and the resulting network computes the program's query on every
// distribution policy, in the original (and even oblivious) model.
//
// Errors on programs with negation (not guaranteed monotone; use the
// absence / domain-request strategies per Figure 2) and on programs reading
// the Adom convenience relation.
Result<DatalogTransducer> CompileBroadcast(const datalog::Program& program,
                                           std::string name);

}  // namespace calm::transducer

#endif  // CALM_TRANSDUCER_COMPILER_H_
