#ifndef CALM_TRANSDUCER_POLICY_H_
#define CALM_TRANSDUCER_POLICY_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/fact.h"
#include "base/instance.h"
#include "base/value.h"

namespace calm::transducer {

// A network is a finite nonempty set of nodes; nodes are domain values
// (Section 4.1.1), so node identifiers can occur as data.
using Network = std::vector<Value>;

// A distribution policy P for a schema and network: a total function from
// facts to nonempty node sets. dist_P(I) gives node x the facts f with
// x in P(f).
class DistributionPolicy {
 public:
  virtual ~DistributionPolicy() = default;

  // Must return a nonempty subset of the network.
  virtual std::set<Value> NodesFor(const Fact& fact) const = 0;

  // Domain-guided policies (Section 4.1.1) additionally admit a domain
  // assignment alpha with P(R(a1..ak)) = union of alpha(ai).
  virtual bool is_domain_guided() const { return false; }

  // alpha(value); only meaningful when is_domain_guided().
  virtual std::set<Value> NodesForValue(Value value) const {
    (void)value;
    return {};
  }

  virtual std::string name() const = 0;
};

// dist_P(I): node -> local fragment.
std::map<Value, Instance> Distribute(const DistributionPolicy& policy,
                                     const Network& network,
                                     const Instance& input);

// Hashes the whole fact to a single node (the typical hash-partitioned
// cluster; not domain-guided).
class HashPolicy : public DistributionPolicy {
 public:
  explicit HashPolicy(Network network, uint64_t salt = 0)
      : network_(std::move(network)), salt_(salt) {}
  std::set<Value> NodesFor(const Fact& fact) const override;
  std::string name() const override { return "hash"; }

 private:
  Network network_;
  uint64_t salt_;
};

// Hashes a fixed attribute position (like Example 4.1's P1, which partitions
// E on its first attribute). Positions beyond a fact's arity wrap around.
class AttributeHashPolicy : public DistributionPolicy {
 public:
  AttributeHashPolicy(Network network, size_t position, uint64_t salt = 0)
      : network_(std::move(network)), position_(position), salt_(salt) {}
  std::set<Value> NodesFor(const Fact& fact) const override;
  std::string name() const override { return "attr-hash"; }

 private:
  Network network_;
  size_t position_;
  uint64_t salt_;
};

// Domain-guided policy from a hash-based domain assignment: alpha(a) = the
// node a hashes to. P(R(a1..ak)) = union of alpha(ai) (Example 4.1's P2).
class HashDomainGuidedPolicy : public DistributionPolicy {
 public:
  explicit HashDomainGuidedPolicy(Network network, uint64_t salt = 0)
      : network_(std::move(network)), salt_(salt) {}
  std::set<Value> NodesFor(const Fact& fact) const override;
  bool is_domain_guided() const override { return true; }
  std::set<Value> NodesForValue(Value value) const override;
  std::string name() const override { return "domain-hash"; }

 private:
  Network network_;
  uint64_t salt_;
};

// The proofs' "ideal" policy: every fact (equivalently every domain value)
// is assigned to the single node `target`. Domain-guided by construction.
class AllToOnePolicy : public DistributionPolicy {
 public:
  explicit AllToOnePolicy(Value target) : target_(target) {}
  std::set<Value> NodesFor(const Fact&) const override { return {target_}; }
  bool is_domain_guided() const override { return true; }
  std::set<Value> NodesForValue(Value) const override { return {target_}; }
  std::string name() const override { return "all-to-one"; }

 private:
  Value target_;
};

// Explicit overrides on top of a base policy; used to replay the proof of
// Theorem 4.3 (P2 sends the facts of J to node y, everything else per P1).
class OverridePolicy : public DistributionPolicy {
 public:
  OverridePolicy(const DistributionPolicy* base,
                 std::map<Fact, std::set<Value>> overrides)
      : base_(base), overrides_(std::move(overrides)) {}
  std::set<Value> NodesFor(const Fact& fact) const override {
    auto it = overrides_.find(fact);
    return it != overrides_.end() ? it->second : base_->NodesFor(fact);
  }
  std::string name() const override { return "override+" + base_->name(); }

 private:
  const DistributionPolicy* base_;
  std::map<Fact, std::set<Value>> overrides_;
};

// Domain assignment given explicitly per value, with a hash fallback; used
// to replay the proof of Theorem 4.5 (assign adom(J) to y, the rest to x).
class MapDomainGuidedPolicy : public DistributionPolicy {
 public:
  MapDomainGuidedPolicy(Network network, std::map<Value, std::set<Value>> alpha,
                        Value fallback)
      : network_(std::move(network)),
        alpha_(std::move(alpha)),
        fallback_(fallback) {}
  std::set<Value> NodesFor(const Fact& fact) const override;
  bool is_domain_guided() const override { return true; }
  std::set<Value> NodesForValue(Value value) const override;
  std::string name() const override { return "domain-map"; }

 private:
  Network network_;
  std::map<Value, std::set<Value>> alpha_;
  Value fallback_;
};

}  // namespace calm::transducer

#endif  // CALM_TRANSDUCER_POLICY_H_
