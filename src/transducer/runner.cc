#include "transducer/runner.h"

#include <memory>
#include <optional>
#include <string>

namespace calm::transducer {

const char* SchedulerKindName(RunOptions::SchedulerKind kind) {
  switch (kind) {
    case RunOptions::SchedulerKind::kRoundRobin:
      return "round-robin";
    case RunOptions::SchedulerKind::kRandom:
      return "random";
    case RunOptions::SchedulerKind::kAdversarialDelay:
      return "adversarial-delay";
  }
  return "unknown";
}

namespace {

// The bulk-synchronous loop: each superstep steps every node in node order,
// delivering its entire buffer (empty buffer = heartbeat), then takes the
// barrier. A superstep in which no node changed state or sent anything and
// the network is Idle() is quiescent — every buffer was drained this
// superstep and the barrier released nothing new, so all continuations are
// heartbeats too. Deterministic: no scheduler, no RNG.
Result<RunResult> RunBspToQuiescence(TransducerNetwork& network,
                                     const RunOptions& options) {
  if (options.faults != nullptr) {
    return InvalidArgumentError(
        "BSP semantics model a perfect network; run fault plans under async");
  }
  const Network& nodes = network.nodes();
  network.set_semantics(NetworkSemantics::kBsp);

  RunResult result;
  size_t transitions = 0;
  bool quiesced = false;
  while (transitions < options.max_transitions && !quiesced) {
    bool any_change = false;
    bool full_superstep = true;
    for (size_t n = 0; n < nodes.size(); ++n) {
      if (transitions >= options.max_transitions) {
        full_superstep = false;
        break;
      }
      net::Scheduler::Choice choice;
      choice.node_index = n;
      choice.deliveries = network.buffers()[n].AllIndices();
      CALM_RETURN_IF_ERROR(network.StepNode(nodes[n], choice.deliveries));
      if (options.record_choices) result.choices.push_back(std::move(choice));
      ++transitions;
      any_change |= network.last_step_changed();
    }
    network.BspBarrier();
    ++result.supersteps;
    // Quiescence needs a *complete* superstep of heartbeats: a truncated
    // one may have skipped a node whose next step still produces work.
    quiesced = full_superstep && !any_change && network.Idle();
  }

  result.output = network.GlobalOutput();
  result.stats = network.stats();
  result.quiesced = quiesced;
  if (!result.quiesced && options.fail_on_budget) {
    return DeadlineExceededError(
        "BSP run hit max_transitions=" + std::to_string(options.max_transitions) +
        " before quiescence (superstep " + std::to_string(result.supersteps) +
        "); " + net::RunStatsToString(result.stats));
  }
  return result;
}

}  // namespace

Result<RunResult> RunToQuiescence(TransducerNetwork& network,
                                  const RunOptions& options) {
  if (options.semantics == NetworkSemantics::kBsp) {
    return RunBspToQuiescence(network, options);
  }
  const Network& nodes = network.nodes();
  std::unique_ptr<net::Scheduler> scheduler;
  switch (options.scheduler) {
    case RunOptions::SchedulerKind::kRoundRobin:
      scheduler = std::make_unique<net::RoundRobinScheduler>(nodes.size());
      break;
    case RunOptions::SchedulerKind::kRandom:
      scheduler = std::make_unique<net::RandomScheduler>(
          nodes.size(), options.seed, options.deliver_prob, options.max_delay);
      break;
    case RunOptions::SchedulerKind::kAdversarialDelay:
      scheduler = std::make_unique<net::AdversarialDelayScheduler>(
          nodes.size(), options.max_delay);
      break;
  }
  network.set_semantics(NetworkSemantics::kAsync);
  if (options.faults != nullptr) network.set_fault_plan(options.faults);

  RunResult result;
  size_t transitions = 0;
  // A run is quiescent when buffers are empty and *every node* has taken a
  // heartbeat that changed nothing since the last observable change. Merely
  // counting consecutive calm transitions is wrong: a random scheduler can
  // heartbeat the same idle node repeatedly while another node still has
  // pending work. Idle() additionally covers the fault channel: a dropped
  // message awaiting retransmission is still in flight even though no
  // buffer holds it.
  std::vector<bool> calm(nodes.size(), false);
  size_t calm_count = 0;
  while (transitions < options.max_transitions) {
    // The network's buffer vector is already indexed like nodes(): hand it
    // to the scheduler directly instead of copying every entry list.
    net::Scheduler::Choice choice =
        scheduler->Next(network.buffers(), transitions);
    CALM_RETURN_IF_ERROR(
        network.StepNode(nodes[choice.node_index], choice.deliveries));
    if (options.record_choices) result.choices.push_back(choice);
    ++transitions;

    if (network.Idle() && !network.last_step_changed() &&
        choice.deliveries.empty()) {
      if (!calm[choice.node_index]) {
        calm[choice.node_index] = true;
        ++calm_count;
      }
      if (calm_count == nodes.size()) break;  // every node is calm
    } else {
      calm.assign(nodes.size(), false);
      calm_count = 0;
    }
  }

  result.output = network.GlobalOutput();
  result.stats = network.stats();
  result.quiesced = transitions < options.max_transitions;
  if (!result.quiesced && options.fail_on_budget) {
    return DeadlineExceededError(
        "run hit max_transitions=" + std::to_string(options.max_transitions) +
        " before quiescence under " + SchedulerKindName(options.scheduler) +
        "(seed=" + std::to_string(options.seed) + "); " +
        net::RunStatsToString(result.stats));
  }
  return result;
}

Result<Instance> RunConsistently(
    const std::function<Result<TransducerNetwork*>()>& make_network,
    const ConsistencyOptions& options) {
  std::optional<Instance> reference;
  for (size_t run = 0; run < options.random_runs + 1; ++run) {
    CALM_ASSIGN_OR_RETURN(TransducerNetwork * network, make_network());
    RunOptions ro;
    if (run == 0) {
      ro.scheduler = RunOptions::SchedulerKind::kRoundRobin;
    } else {
      ro.scheduler = RunOptions::SchedulerKind::kRandom;
      ro.seed = options.seed * 131 + run;
    }
    ro.max_transitions = options.max_transitions;
    const std::string label = std::string(SchedulerKindName(ro.scheduler)) +
                              "(seed=" + std::to_string(ro.seed) + ")";
    CALM_ASSIGN_OR_RETURN(RunResult result, RunToQuiescence(*network, ro));
    if (!result.quiesced) {
      return FailedPreconditionError(
          "run " + std::to_string(run) + " under " + label +
          " did not quiesce within " +
          std::to_string(options.max_transitions) + " transitions; " +
          net::RunStatsToString(result.stats));
    }
    if (!reference.has_value()) {
      reference = std::move(result.output);
    } else if (*reference != result.output) {
      return FailedPreconditionError(
          "schedule-dependent output: run " + std::to_string(run) +
          " under " + label + " produced " + result.output.ToString() +
          " but run 0 under round-robin(seed=0) produced " +
          reference->ToString());
    }
  }
  return *reference;
}

}  // namespace calm::transducer
