#include "transducer/runner.h"

#include <memory>

namespace calm::transducer {

Result<RunResult> RunToQuiescence(TransducerNetwork& network,
                                  const RunOptions& options) {
  const Network& nodes = network.nodes();
  std::unique_ptr<net::Scheduler> scheduler;
  switch (options.scheduler) {
    case RunOptions::SchedulerKind::kRoundRobin:
      scheduler = std::make_unique<net::RoundRobinScheduler>(nodes.size());
      break;
    case RunOptions::SchedulerKind::kRandom:
      scheduler = std::make_unique<net::RandomScheduler>(
          nodes.size(), options.seed, options.deliver_prob, options.max_delay);
      break;
    case RunOptions::SchedulerKind::kAdversarialDelay:
      scheduler = std::make_unique<net::AdversarialDelayScheduler>(
          nodes.size(), options.max_delay);
      break;
  }

  size_t transitions = 0;
  // A run is quiescent when buffers are empty and *every node* has taken a
  // heartbeat that changed nothing since the last observable change. Merely
  // counting consecutive calm transitions is wrong: a random scheduler can
  // heartbeat the same idle node repeatedly while another node still has
  // pending work.
  std::vector<bool> calm(nodes.size(), false);
  size_t calm_count = 0;
  while (transitions < options.max_transitions) {
    // The network's buffer vector is already indexed like nodes(): hand it
    // to the scheduler directly instead of copying every entry list.
    net::Scheduler::Choice choice =
        scheduler->Next(network.buffers(), transitions);
    CALM_RETURN_IF_ERROR(
        network.StepNode(nodes[choice.node_index], choice.deliveries));
    ++transitions;

    if (network.BuffersEmpty() && !network.last_step_changed() &&
        choice.deliveries.empty()) {
      if (!calm[choice.node_index]) {
        calm[choice.node_index] = true;
        ++calm_count;
      }
      if (calm_count == nodes.size()) break;  // every node is calm
    } else {
      calm.assign(nodes.size(), false);
      calm_count = 0;
    }
  }

  RunResult result;
  result.output = network.GlobalOutput();
  result.stats = network.stats();
  result.quiesced = transitions < options.max_transitions;
  return result;
}

Result<Instance> RunConsistently(
    const std::function<Result<TransducerNetwork*>()>& make_network,
    const ConsistencyOptions& options) {
  std::optional<Instance> reference;
  for (size_t run = 0; run < options.random_runs + 1; ++run) {
    CALM_ASSIGN_OR_RETURN(TransducerNetwork * network, make_network());
    RunOptions ro;
    if (run == 0) {
      ro.scheduler = RunOptions::SchedulerKind::kRoundRobin;
    } else {
      ro.scheduler = RunOptions::SchedulerKind::kRandom;
      ro.seed = options.seed * 131 + run;
    }
    ro.max_transitions = options.max_transitions;
    CALM_ASSIGN_OR_RETURN(RunResult result, RunToQuiescence(*network, ro));
    if (!result.quiesced) {
      return FailedPreconditionError("run did not quiesce within limit");
    }
    if (!reference.has_value()) {
      reference = std::move(result.output);
    } else if (*reference != result.output) {
      return FailedPreconditionError(
          "schedule-dependent output: " + reference->ToString() + " vs " +
          result.output.ToString());
    }
  }
  return *reference;
}

}  // namespace calm::transducer
