#include "transducer/schema.h"

namespace calm::transducer {

std::string ModelOptions::ToString() const {
  std::string out = policy_aware ? "policy-aware" : "original";
  if (!expose_all) out += "/no-All";
  if (!expose_id) out += "/no-Id";
  return out;
}

std::string PolicyRelationName(uint32_t relation) {
  return "policy_" + NameOf(relation);
}

uint32_t PolicyRelationId(uint32_t relation) {
  return InternName(PolicyRelationName(relation));
}

uint32_t IdRelation() {
  static const uint32_t kId = InternName("Id");
  return kId;
}
uint32_t AllRelation() {
  static const uint32_t kId = InternName("All");
  return kId;
}
uint32_t MyAdomRelation() {
  static const uint32_t kId = InternName("MyAdom");
  return kId;
}

Schema TransducerSchema::SystemSchema(const ModelOptions& model) const {
  Schema sys;
  if (model.expose_id) (void)sys.AddRelation(RelationDecl(IdRelation(), 1));
  if (model.expose_all) (void)sys.AddRelation(RelationDecl(AllRelation(), 1));
  if (model.policy_aware) {
    (void)sys.AddRelation(RelationDecl(MyAdomRelation(), 1));
    for (const RelationDecl& r : in.relations()) {
      (void)sys.AddRelation(RelationDecl(PolicyRelationId(r.name), r.arity));
    }
  }
  return sys;
}

Status TransducerSchema::Validate(const ModelOptions& model) const {
  Result<Schema> all = QueryInputSchema(model);
  if (!all.ok()) return all.status();
  size_t expected = in.size() + out.size() + msg.size() + mem.size() +
                    SystemSchema(model).size();
  if (all->size() != expected) {
    return InvalidArgumentError(
        "transducer schema relation names are not disjoint");
  }
  return Status::Ok();
}

Result<Schema> TransducerSchema::QueryInputSchema(
    const ModelOptions& model) const {
  CALM_ASSIGN_OR_RETURN(Schema s, Schema::Union(in, out));
  CALM_ASSIGN_OR_RETURN(s, Schema::Union(s, msg));
  CALM_ASSIGN_OR_RETURN(s, Schema::Union(s, mem));
  CALM_ASSIGN_OR_RETURN(s, Schema::Union(s, SystemSchema(model)));
  return s;
}

}  // namespace calm::transducer
