#include "transducer/confluence.h"

#include <algorithm>
#include <utility>

#include "base/thread_pool.h"

namespace calm::transducer {

namespace {

// One faulted run: fresh network, plan attached, run to quiescence.
Result<RunResult> RunOnce(const NetworkFactory& make_network,
                          net::FaultPlan* plan, const RunOptions& base) {
  CALM_ASSIGN_OR_RETURN(std::unique_ptr<TransducerNetwork> network,
                        make_network());
  RunOptions ro = base;
  ro.faults = plan;
  return RunToQuiescence(*network, ro);
}

// Divergence = different output *or* missed quiescence (a fairness-
// preserving plan must still let the run finish).
bool Diverged(const RunResult& result, const Instance& expected) {
  return !result.quiesced || result.output != expected;
}

void AccumulateFaults(const net::FaultStats& from, net::FaultStats* into) {
  into->duplicates += from.duplicates;
  into->drops += from.drops;
  into->retransmits += from.retransmits;
  into->reorders += from.reorders;
  into->partitions += from.partitions;
  into->partition_holds += from.partition_holds;
  into->crashes += from.crashes;
}

}  // namespace

Result<std::vector<net::FaultEvent>> ShrinkDivergence(
    const NetworkFactory& make_network, const Instance& expected,
    const RunOptions& base, const std::vector<net::FaultEvent>& events,
    size_t max_runs) {
  auto diverges = [&](const std::vector<net::FaultEvent>& candidate)
      -> Result<bool> {
    net::FaultPlan plan = net::FaultPlan::Scripted(candidate);
    CALM_ASSIGN_OR_RETURN(RunResult result,
                          RunOnce(make_network, &plan, base));
    return Diverged(result, expected);
  };

  // ddmin with complement removal: split into n chunks, try dropping each
  // chunk; on success restart at coarser granularity, otherwise refine.
  // Terminates 1-minimal once n reaches the schedule length.
  std::vector<net::FaultEvent> current = events;
  size_t runs = 0;
  size_t n = 2;
  while (current.size() >= 2 && runs < max_runs) {
    const size_t chunk = (current.size() + n - 1) / n;
    bool reduced = false;
    for (size_t start = 0; start < current.size() && runs < max_runs;
         start += chunk) {
      std::vector<net::FaultEvent> candidate;
      candidate.reserve(current.size());
      for (size_t i = 0; i < current.size(); ++i) {
        if (i < start || i >= start + chunk) candidate.push_back(current[i]);
      }
      ++runs;
      CALM_ASSIGN_OR_RETURN(bool d, diverges(candidate));
      if (d) {
        current = std::move(candidate);
        n = std::max<size_t>(n - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= current.size()) break;  // singleton removals all failed
      n = std::min(current.size(), n * 2);
    }
  }
  return current;
}

Result<ConfluenceReport> CheckConfluence(const NetworkFactory& make_network,
                                         const ConfluenceOptions& options) {
  // Faultless round-robin reference.
  RunOptions reference_options;
  reference_options.scheduler = RunOptions::SchedulerKind::kRoundRobin;
  reference_options.max_transitions = options.max_transitions;
  reference_options.max_delay = options.max_delay;
  CALM_ASSIGN_OR_RETURN(std::unique_ptr<TransducerNetwork> reference_network,
                        make_network());
  CALM_ASSIGN_OR_RETURN(RunResult reference,
                        RunToQuiescence(*reference_network,
                                        reference_options));
  if (!reference.quiesced) {
    return FailedPreconditionError(
        "reference run did not quiesce within " +
        std::to_string(options.max_transitions) + " transitions; " +
        net::RunStatsToString(reference.stats));
  }

  ConfluenceReport report;
  report.reference = reference.output;

  struct RunRecord {
    RunOptions run_options;
    uint64_t plan_seed = 0;
    bool diverged = false;
    bool faulted = false;
    std::vector<net::FaultEvent> log;
    net::FaultStats stats;
    Status error = Status::Ok();
  };
  const size_t total = options.schedulers.size() * options.fault_plans;
  std::vector<RunRecord> records(total);

  // The (scheduler, plan) product. Runs are independent — each has its own
  // plan and network — so they parallelize; the record vector keeps the
  // deterministic enumeration order regardless of thread count.
  ParallelFor(total, options.threads == 0 ? 1 : options.threads,
              [&](size_t index) {
                const size_t kind_index = index / options.fault_plans;
                const size_t plan_index = index % options.fault_plans;
                RunRecord& record = records[index];
                record.plan_seed = options.seed * 1000003 +
                                   kind_index * 8191 + plan_index;
                record.run_options.scheduler = options.schedulers[kind_index];
                record.run_options.seed = record.plan_seed;
                record.run_options.max_transitions = options.max_transitions;
                record.run_options.max_delay = options.max_delay;
                net::FaultPlan plan =
                    net::FaultPlan::Random(record.plan_seed, options.profile);
                Result<RunResult> result =
                    RunOnce(make_network, &plan, record.run_options);
                if (!result.ok()) {
                  record.error = result.status();
                  return;
                }
                record.diverged = Diverged(*result, report.reference);
                record.faulted = !plan.log().empty();
                record.log = plan.log();
                record.stats = plan.stats();
              });

  for (RunRecord& record : records) {
    if (!record.error.ok()) return record.error;
    ++report.runs;
    if (record.faulted) ++report.faulted_runs;
    AccumulateFaults(record.stats, &report.total_faults);
    if (!record.diverged ||
        report.divergences.size() >= options.max_divergences) {
      continue;
    }

    DivergenceWitness witness;
    witness.scheduler = record.run_options.scheduler;
    witness.plan_seed = record.plan_seed;
    witness.original_events = record.log.size();
    witness.events = record.log;
    if (options.shrink) {
      CALM_ASSIGN_OR_RETURN(
          witness.events,
          ShrinkDivergence(make_network, report.reference,
                           record.run_options, record.log));
    }
    // Final run of the (shrunk) schedule: the replayable witness trace.
    net::FaultPlan plan = net::FaultPlan::Scripted(witness.events);
    RunOptions final_options = record.run_options;
    final_options.record_choices = true;
    CALM_ASSIGN_OR_RETURN(RunResult final_run,
                          RunOnce(make_network, &plan, final_options));
    witness.observed = final_run.output;
    witness.quiesced = final_run.quiesced;
    witness.choices = std::move(final_run.choices);
    witness.fault_stats = plan.stats();
    report.divergences.push_back(std::move(witness));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Trace serialization.
// ---------------------------------------------------------------------------

namespace {

Result<Json> FactToJson(const Fact& fact) {
  Json out = Json::Array();
  out.Append(Json::Str(NameOf(fact.relation)));
  for (const Value& v : fact.args) {
    if (!v.is_int()) {
      return InvalidArgumentError(
          "trace serialization requires integer domain values, got non-int "
          "in relation " +
          NameOf(fact.relation));
    }
    out.Append(Json::Uint(v.payload()));
  }
  return out;
}

Result<Fact> FactFromJson(const Json& json) {
  if (!json.is_array() || json.items().empty() ||
      !json.items()[0].is_string()) {
    return InvalidArgumentError(
        "trace fact must be [\"Relation\", arg, ...]");
  }
  Tuple args;
  for (size_t i = 1; i < json.items().size(); ++i) {
    if (!json.items()[i].is_number()) {
      return InvalidArgumentError("trace fact argument is not an integer");
    }
    args.push_back(Value::FromInt(json.items()[i].uint_value()));
  }
  return Fact(InternName(json.items()[0].string_value()), std::move(args));
}

Result<Json> FactsToJson(const std::vector<Fact>& facts) {
  Json out = Json::Array();
  for (const Fact& fact : facts) {
    CALM_ASSIGN_OR_RETURN(Json j, FactToJson(fact));
    out.Append(std::move(j));
  }
  return out;
}

Result<std::vector<Fact>> FactsFromJson(const Json& json) {
  std::vector<Fact> out;
  for (const Json& item : json.items()) {
    CALM_ASSIGN_OR_RETURN(Fact fact, FactFromJson(item));
    out.push_back(std::move(fact));
  }
  return out;
}

Json EventToJson(const net::FaultEvent& event) {
  Json out = Json::Object();
  out.Set("kind", Json::Str(net::FaultKindName(event.kind)));
  switch (event.kind) {
    case net::FaultEvent::Kind::kDuplicate:
      out.Set("send_seq", Json::Uint(event.send_seq));
      out.Set("copies", Json::Uint(event.copies));
      break;
    case net::FaultEvent::Kind::kDrop:
      out.Set("send_seq", Json::Uint(event.send_seq));
      out.Set("deliver_at", Json::Uint(event.deliver_at));
      out.Set("attempts", Json::Uint(event.attempts));
      break;
    case net::FaultEvent::Kind::kReorder:
      out.Set("send_seq", Json::Uint(event.send_seq));
      out.Set("position", Json::Uint(event.position));
      break;
    case net::FaultEvent::Kind::kPartition:
      out.Set("tick", Json::Uint(event.tick));
      out.Set("window", Json::Uint(event.window));
      out.Set("node_a", Json::Uint(event.node_a));
      out.Set("node_b", Json::Uint(event.node_b));
      break;
    case net::FaultEvent::Kind::kCrash:
      out.Set("tick", Json::Uint(event.tick));
      out.Set("node", Json::Uint(event.node));
      break;
  }
  return out;
}

Result<net::FaultEvent> EventFromJson(const Json& json) {
  net::FaultEvent event;
  CALM_ASSIGN_OR_RETURN(std::string kind, json.GetString("kind"));
  if (kind == "duplicate") {
    event.kind = net::FaultEvent::Kind::kDuplicate;
    CALM_ASSIGN_OR_RETURN(event.send_seq, json.GetUint("send_seq"));
    CALM_ASSIGN_OR_RETURN(uint64_t copies, json.GetUint("copies"));
    event.copies = static_cast<size_t>(copies);
  } else if (kind == "drop") {
    event.kind = net::FaultEvent::Kind::kDrop;
    CALM_ASSIGN_OR_RETURN(event.send_seq, json.GetUint("send_seq"));
    CALM_ASSIGN_OR_RETURN(event.deliver_at, json.GetUint("deliver_at"));
    CALM_ASSIGN_OR_RETURN(uint64_t attempts, json.GetUint("attempts"));
    event.attempts = static_cast<size_t>(attempts);
  } else if (kind == "reorder") {
    event.kind = net::FaultEvent::Kind::kReorder;
    CALM_ASSIGN_OR_RETURN(event.send_seq, json.GetUint("send_seq"));
    CALM_ASSIGN_OR_RETURN(uint64_t position, json.GetUint("position"));
    event.position = static_cast<size_t>(position);
  } else if (kind == "partition") {
    event.kind = net::FaultEvent::Kind::kPartition;
    CALM_ASSIGN_OR_RETURN(event.tick, json.GetUint("tick"));
    CALM_ASSIGN_OR_RETURN(event.window, json.GetUint("window"));
    CALM_ASSIGN_OR_RETURN(uint64_t a, json.GetUint("node_a"));
    CALM_ASSIGN_OR_RETURN(uint64_t b, json.GetUint("node_b"));
    event.node_a = static_cast<size_t>(a);
    event.node_b = static_cast<size_t>(b);
  } else if (kind == "crash") {
    event.kind = net::FaultEvent::Kind::kCrash;
    CALM_ASSIGN_OR_RETURN(event.tick, json.GetUint("tick"));
    CALM_ASSIGN_OR_RETURN(uint64_t node, json.GetUint("node"));
    event.node = static_cast<size_t>(node);
  } else {
    return InvalidArgumentError("unknown fault event kind '" + kind + "'");
  }
  return event;
}

Result<RunOptions::SchedulerKind> SchedulerKindFromName(
    const std::string& name) {
  if (name == "round-robin") return RunOptions::SchedulerKind::kRoundRobin;
  if (name == "random") return RunOptions::SchedulerKind::kRandom;
  if (name == "adversarial-delay") {
    return RunOptions::SchedulerKind::kAdversarialDelay;
  }
  return InvalidArgumentError("unknown scheduler kind '" + name + "'");
}

}  // namespace

RunOptions TraceRunOptions(const TraceRecord& trace) {
  RunOptions ro;
  ro.scheduler = trace.scheduler;
  ro.seed = trace.scheduler_seed;
  ro.deliver_prob = trace.deliver_prob;
  ro.max_delay = trace.max_delay;
  ro.max_transitions = trace.max_transitions;
  return ro;
}

Result<std::string> SerializeTrace(const TraceRecord& trace) {
  Json doc = Json::Object();
  doc.Set("version", Json::Int(trace.version));
  doc.Set("scenario", Json::Str(trace.scenario));
  doc.Set("policy", Json::Str(trace.policy));
  doc.Set("policy_salt", Json::Uint(trace.policy_salt));
  doc.Set("model", Json::Str(trace.model));
  Json nodes = Json::Array();
  for (uint64_t n : trace.nodes) nodes.Append(Json::Uint(n));
  doc.Set("nodes", std::move(nodes));
  CALM_ASSIGN_OR_RETURN(Json input, FactsToJson(trace.input));
  doc.Set("input", std::move(input));
  Json scheduler = Json::Object();
  scheduler.Set("kind", Json::Str(SchedulerKindName(trace.scheduler)));
  scheduler.Set("seed", Json::Uint(trace.scheduler_seed));
  scheduler.Set("deliver_prob", Json::Double(trace.deliver_prob));
  scheduler.Set("max_delay", Json::Uint(trace.max_delay));
  scheduler.Set("max_transitions", Json::Uint(trace.max_transitions));
  doc.Set("scheduler", std::move(scheduler));
  Json events = Json::Array();
  for (const net::FaultEvent& e : trace.events) events.Append(EventToJson(e));
  doc.Set("fault_events", std::move(events));
  Json choices = Json::Array();
  for (const net::Scheduler::Choice& c : trace.choices) {
    Json choice = Json::Array();
    choice.Append(Json::Uint(c.node_index));
    Json deliveries = Json::Array();
    for (size_t d : c.deliveries) deliveries.Append(Json::Uint(d));
    choice.Append(std::move(deliveries));
    choices.Append(std::move(choice));
  }
  doc.Set("choices", std::move(choices));
  CALM_ASSIGN_OR_RETURN(Json expected, FactsToJson(trace.expected_output));
  doc.Set("expected_output", std::move(expected));
  CALM_ASSIGN_OR_RETURN(Json observed, FactsToJson(trace.observed_output));
  doc.Set("observed_output", std::move(observed));
  return doc.Dump(2);
}

Result<TraceRecord> ParseTrace(const std::string& json_text) {
  CALM_ASSIGN_OR_RETURN(Json doc, Json::Parse(json_text));
  if (!doc.is_object()) {
    return InvalidArgumentError("trace document is not a JSON object");
  }
  TraceRecord trace;
  CALM_ASSIGN_OR_RETURN(int64_t version, doc.GetInt("version"));
  trace.version = static_cast<int>(version);
  if (trace.version != 1) {
    return InvalidArgumentError("unsupported trace version " +
                                std::to_string(trace.version));
  }
  CALM_ASSIGN_OR_RETURN(trace.scenario, doc.GetString("scenario"));
  CALM_ASSIGN_OR_RETURN(trace.policy, doc.GetString("policy"));
  CALM_ASSIGN_OR_RETURN(trace.policy_salt, doc.GetUint("policy_salt"));
  CALM_ASSIGN_OR_RETURN(trace.model, doc.GetString("model"));
  CALM_ASSIGN_OR_RETURN(const Json* nodes, doc.GetArray("nodes"));
  for (const Json& n : nodes->items()) {
    if (!n.is_number()) {
      return InvalidArgumentError("trace node id is not an integer");
    }
    trace.nodes.push_back(n.uint_value());
  }
  CALM_ASSIGN_OR_RETURN(const Json* input, doc.GetArray("input"));
  CALM_ASSIGN_OR_RETURN(trace.input, FactsFromJson(*input));
  const Json* scheduler = doc.Find("scheduler");
  if (scheduler == nullptr || !scheduler->is_object()) {
    return InvalidArgumentError("trace is missing the scheduler object");
  }
  CALM_ASSIGN_OR_RETURN(std::string kind, scheduler->GetString("kind"));
  CALM_ASSIGN_OR_RETURN(trace.scheduler, SchedulerKindFromName(kind));
  CALM_ASSIGN_OR_RETURN(trace.scheduler_seed, scheduler->GetUint("seed"));
  CALM_ASSIGN_OR_RETURN(trace.deliver_prob,
                        scheduler->GetDouble("deliver_prob"));
  CALM_ASSIGN_OR_RETURN(trace.max_delay, scheduler->GetUint("max_delay"));
  CALM_ASSIGN_OR_RETURN(uint64_t max_transitions,
                        scheduler->GetUint("max_transitions"));
  trace.max_transitions = static_cast<size_t>(max_transitions);
  CALM_ASSIGN_OR_RETURN(const Json* events, doc.GetArray("fault_events"));
  for (const Json& e : events->items()) {
    CALM_ASSIGN_OR_RETURN(net::FaultEvent event, EventFromJson(e));
    trace.events.push_back(event);
  }
  if (const Json* choices = doc.Find("choices");
      choices != nullptr && choices->is_array()) {
    for (const Json& c : choices->items()) {
      if (!c.is_array() || c.items().size() != 2 ||
          !c.items()[0].is_number() || !c.items()[1].is_array()) {
        return InvalidArgumentError(
            "trace choice must be [node_index, [deliveries...]]");
      }
      net::Scheduler::Choice choice;
      choice.node_index = static_cast<size_t>(c.items()[0].uint_value());
      for (const Json& d : c.items()[1].items()) {
        if (!d.is_number()) {
          return InvalidArgumentError("trace delivery index is not a number");
        }
        choice.deliveries.push_back(static_cast<size_t>(d.uint_value()));
      }
      trace.choices.push_back(std::move(choice));
    }
  }
  CALM_ASSIGN_OR_RETURN(const Json* expected, doc.GetArray("expected_output"));
  CALM_ASSIGN_OR_RETURN(trace.expected_output, FactsFromJson(*expected));
  CALM_ASSIGN_OR_RETURN(const Json* observed, doc.GetArray("observed_output"));
  CALM_ASSIGN_OR_RETURN(trace.observed_output, FactsFromJson(*observed));
  return trace;
}

Result<ReplayOutcome> ReplayTrace(const NetworkFactory& make_network,
                                  const TraceRecord& trace) {
  net::FaultPlan plan = net::FaultPlan::Scripted(trace.events);
  RunOptions ro = TraceRunOptions(trace);
  ro.record_choices = true;
  ReplayOutcome outcome;
  CALM_ASSIGN_OR_RETURN(outcome.result, RunOnce(make_network, &plan, ro));

  Instance observed;
  for (const Fact& fact : trace.observed_output) observed.Insert(fact);
  Instance expected;
  for (const Fact& fact : trace.expected_output) expected.Insert(fact);
  outcome.reproduced_output = outcome.result.output == observed;
  outcome.diverged = outcome.result.output != expected;
  if (trace.choices.empty()) {
    outcome.reproduced_choices = true;
  } else {
    outcome.reproduced_choices = trace.choices.size() ==
                                 outcome.result.choices.size();
    for (size_t i = 0;
         outcome.reproduced_choices && i < trace.choices.size(); ++i) {
      outcome.reproduced_choices =
          trace.choices[i].node_index ==
              outcome.result.choices[i].node_index &&
          trace.choices[i].deliveries == outcome.result.choices[i].deliveries;
    }
  }
  return outcome;
}

}  // namespace calm::transducer
