#include "transducer/datalog_transducer.h"

#include <cstdio>
#include <cstdlib>

#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "datalog/stratifier.h"

namespace calm::transducer {

namespace {

// Validates one of the four programs against its target schema and returns
// the schema of its marked output relations.
//
// Conventions: a program may define scratch idb relations (fresh names) and
// may use *target* relation names as heads. Head relations are evaluated
// against a D with their existing copy stripped (see EvalPart) — the
// paper's queries produce a fresh target instance. Shadowing any other
// schema relation is rejected.
Result<Schema> ValidatePart(const datalog::Program& program,
                            const Schema& query_input, const Schema& target,
                            const char* which, Schema* idb) {
  Schema out;
  if (program.rules.empty()) return out;
  CALM_ASSIGN_OR_RETURN(datalog::ProgramInfo info, datalog::Analyze(program));
  CALM_ASSIGN_OR_RETURN(datalog::Stratification strat,
                        datalog::Stratify(program, info));
  (void)strat;
  for (const RelationDecl& r : info.edb.relations()) {
    if (r.name == datalog::AdomRelation()) continue;
    if (query_input.ArityOf(r.name) != r.arity) {
      return InvalidArgumentError(
          std::string(which) + " reads relation '" + NameOf(r.name) +
          "' which is not part of the transducer schema");
    }
  }
  for (const RelationDecl& r : info.idb.relations()) {
    if (query_input.Contains(r.name) && target.ArityOf(r.name) != r.arity) {
      return InvalidArgumentError(std::string(which) + " defines relation '" +
                                  NameOf(r.name) +
                                  "' which shadows a non-target schema "
                                  "relation");
    }
  }
  if (program.output_relations.empty()) {
    return InvalidArgumentError(std::string(which) +
                                " has no marked output relations");
  }
  CALM_ASSIGN_OR_RETURN(out, datalog::OutputSchema(program, info));
  *idb = info.idb;
  for (const RelationDecl& r : out.relations()) {
    if (target.ArityOf(r.name) != r.arity) {
      return InvalidArgumentError(std::string(which) + " output relation '" +
                                  NameOf(r.name) +
                                  "' is not in its target schema");
    }
  }
  return out;
}

}  // namespace

Result<DatalogTransducer> DatalogTransducer::Create(
    TransducerSchema schema, const ModelOptions& model, datalog::Program qout,
    datalog::Program qins, datalog::Program qdel, datalog::Program qsnd,
    std::string name) {
  DatalogTransducer t;
  CALM_RETURN_IF_ERROR(schema.Validate(model));
  CALM_ASSIGN_OR_RETURN(Schema query_input, schema.QueryInputSchema(model));
  CALM_ASSIGN_OR_RETURN(t.out_schema_, ValidatePart(qout, query_input,
                                                    schema.out, "Qout",
                                                    &t.out_idb_));
  CALM_ASSIGN_OR_RETURN(t.ins_schema_, ValidatePart(qins, query_input,
                                                    schema.mem, "Qins",
                                                    &t.ins_idb_));
  CALM_ASSIGN_OR_RETURN(t.del_schema_, ValidatePart(qdel, query_input,
                                                    schema.mem, "Qdel",
                                                    &t.del_idb_));
  CALM_ASSIGN_OR_RETURN(t.snd_schema_, ValidatePart(qsnd, query_input,
                                                    schema.msg, "Qsnd",
                                                    &t.snd_idb_));

  t.schema_ = std::move(schema);
  t.qout_ = std::move(qout);
  t.qins_ = std::move(qins);
  t.qdel_ = std::move(qdel);
  t.qsnd_ = std::move(qsnd);
  t.name_ = std::move(name);
  return t;
}

Result<Instance> DatalogTransducer::EvalPart(const datalog::Program& program,
                                             const Instance& d,
                                             const Schema& target,
                                             const Schema& idb) const {
  if (program.rules.empty()) return Instance();
  // The paper's queries map D to a *fresh* instance over the target schema:
  // a head relation that also occurs in D (e.g. a message relation both
  // delivered and re-derived) starts empty — so strip the program's idb
  // relations from D before evaluation.
  Instance seed;
  d.ForEachFact([&](uint32_t name, const Tuple& tuple) {
    if (!idb.Contains(name)) seed.Insert(Fact(name, tuple));
  });
  CALM_ASSIGN_OR_RETURN(Instance full, datalog::Evaluate(program, seed));
  return full.Restrict(target);
}

Result<StepOutput> DatalogTransducer::Step(const StepInput& in) const {
  Instance d = in.D();
  StepOutput out;
  CALM_ASSIGN_OR_RETURN(out.output, EvalPart(qout_, d, out_schema_, out_idb_));
  CALM_ASSIGN_OR_RETURN(out.insertions,
                        EvalPart(qins_, d, ins_schema_, ins_idb_));
  CALM_ASSIGN_OR_RETURN(out.deletions,
                        EvalPart(qdel_, d, del_schema_, del_idb_));
  CALM_ASSIGN_OR_RETURN(out.sends, EvalPart(qsnd_, d, snd_schema_, snd_idb_));
  return out;
}

DatalogTransducer DatalogTransducer::FromTextOrDie(
    TransducerSchema schema, const ModelOptions& model, std::string_view qout,
    std::string_view qins, std::string_view qdel, std::string_view qsnd,
    std::string name) {
  auto parse = [](std::string_view text) {
    if (text.empty()) return datalog::Program{};
    return datalog::ParseOrDie(text);
  };
  Result<DatalogTransducer> t =
      Create(std::move(schema), model, parse(qout), parse(qins), parse(qdel),
             parse(qsnd), std::move(name));
  if (!t.ok()) {
    std::fprintf(stderr, "DatalogTransducer invalid: %s\n",
                 t.status().ToString().c_str());
    std::abort();
  }
  return std::move(t).value();
}

}  // namespace calm::transducer
