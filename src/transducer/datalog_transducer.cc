#include "transducer/datalog_transducer.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "datalog/analysis.h"
#include "datalog/parser.h"

namespace calm::transducer {

namespace {

// Validates one of the four programs against its target schema and compiles
// it once; Step only runs the prepared form.
//
// Conventions: a program may define scratch idb relations (fresh names) and
// may use *target* relation names as heads. Head relations are evaluated
// against a D with their existing copy stripped (see EvalPart) — the
// paper's queries produce a fresh target instance. Shadowing any other
// schema relation is rejected.
Result<std::pair<std::shared_ptr<const datalog::PreparedProgram>, Schema>>
PreparePart(const datalog::Program& program, const Schema& query_input,
            const Schema& target, const char* which) {
  std::pair<std::shared_ptr<const datalog::PreparedProgram>, Schema> out;
  if (program.rules.empty()) return out;
  CALM_ASSIGN_OR_RETURN(datalog::PreparedProgram prepared,
                        datalog::PreparedProgram::Prepare(program));
  const datalog::ProgramInfo& info = prepared.info();
  for (const RelationDecl& r : info.edb.relations()) {
    if (r.name == datalog::AdomRelation()) continue;
    if (query_input.ArityOf(r.name) != r.arity) {
      return InvalidArgumentError(
          std::string(which) + " reads relation '" + NameOf(r.name) +
          "' which is not part of the transducer schema");
    }
  }
  for (const RelationDecl& r : info.idb.relations()) {
    if (query_input.Contains(r.name) && target.ArityOf(r.name) != r.arity) {
      return InvalidArgumentError(std::string(which) + " defines relation '" +
                                  NameOf(r.name) +
                                  "' which shadows a non-target schema "
                                  "relation");
    }
  }
  if (program.output_relations.empty()) {
    return InvalidArgumentError(std::string(which) +
                                " has no marked output relations");
  }
  CALM_ASSIGN_OR_RETURN(out.second, datalog::OutputSchema(program, info));
  for (const RelationDecl& r : out.second.relations()) {
    if (target.ArityOf(r.name) != r.arity) {
      return InvalidArgumentError(std::string(which) + " output relation '" +
                                  NameOf(r.name) +
                                  "' is not in its target schema");
    }
  }
  out.first = std::make_shared<const datalog::PreparedProgram>(
      std::move(prepared));
  return out;
}

}  // namespace

Result<DatalogTransducer> DatalogTransducer::Create(
    TransducerSchema schema, const ModelOptions& model, datalog::Program qout,
    datalog::Program qins, datalog::Program qdel, datalog::Program qsnd,
    std::string name) {
  DatalogTransducer t;
  CALM_RETURN_IF_ERROR(schema.Validate(model));
  CALM_ASSIGN_OR_RETURN(Schema query_input, schema.QueryInputSchema(model));
  auto prepare = [&](const datalog::Program& program, const Schema& target,
                     const char* which, Part* part) -> Status {
    CALM_ASSIGN_OR_RETURN(auto prepared,
                          PreparePart(program, query_input, target, which));
    part->prepared = std::move(prepared.first);
    part->target = std::move(prepared.second);
    return Status::Ok();
  };
  CALM_RETURN_IF_ERROR(prepare(qout, schema.out, "Qout", &t.out_));
  CALM_RETURN_IF_ERROR(prepare(qins, schema.mem, "Qins", &t.ins_));
  CALM_RETURN_IF_ERROR(prepare(qdel, schema.mem, "Qdel", &t.del_));
  CALM_RETURN_IF_ERROR(prepare(qsnd, schema.msg, "Qsnd", &t.snd_));

  t.schema_ = std::move(schema);
  t.name_ = std::move(name);
  return t;
}

Result<Instance> DatalogTransducer::EvalPart(const Part& part,
                                             const Instance& d) const {
  if (part.prepared == nullptr) return Instance();
  // The paper's queries map D to a *fresh* instance over the target schema:
  // a head relation that also occurs in D (e.g. a message relation both
  // delivered and re-derived) starts empty — so seed only the program's edb
  // relations from D (equivalent to stripping its idb relations: facts
  // outside the program's schema are never admitted into a seed).
  return part.prepared->EvalParts({&d}, &part.prepared->info().edb,
                                  &part.target);
}

Result<StepOutput> DatalogTransducer::Step(const StepInput& in) const {
  Instance d = in.D();
  StepOutput out;
  CALM_ASSIGN_OR_RETURN(out.output, EvalPart(out_, d));
  CALM_ASSIGN_OR_RETURN(out.insertions, EvalPart(ins_, d));
  CALM_ASSIGN_OR_RETURN(out.deletions, EvalPart(del_, d));
  CALM_ASSIGN_OR_RETURN(out.sends, EvalPart(snd_, d));
  return out;
}

DatalogTransducer DatalogTransducer::FromTextOrDie(
    TransducerSchema schema, const ModelOptions& model, std::string_view qout,
    std::string_view qins, std::string_view qdel, std::string_view qsnd,
    std::string name) {
  auto parse = [](std::string_view text) {
    if (text.empty()) return datalog::Program{};
    return datalog::ParseOrDie(text);
  };
  Result<DatalogTransducer> t =
      Create(std::move(schema), model, parse(qout), parse(qins), parse(qdel),
             parse(qsnd), std::move(name));
  if (!t.ok()) {
    std::fprintf(stderr, "DatalogTransducer invalid: %s\n",
                 t.status().ToString().c_str());
    std::abort();
  }
  return std::move(t).value();
}

}  // namespace calm::transducer
