#include "transducer/coordination.h"

#include "transducer/policy.h"

namespace calm::transducer {

Result<bool> HeartbeatPrefixComputes(const Transducer& transducer,
                                     const ModelOptions& model,
                                     const Network& nodes, Value target,
                                     const Instance& input,
                                     const Instance& expected,
                                     size_t max_heartbeats) {
  AllToOnePolicy ideal(target);
  TransducerNetwork network(nodes, &transducer, &ideal, model);
  CALM_RETURN_IF_ERROR(network.Initialize(input));
  for (size_t step = 0; step < max_heartbeats; ++step) {
    CALM_RETURN_IF_ERROR(network.Heartbeat(target));
    if (network.GlobalOutput() == expected) return true;
  }
  return network.GlobalOutput() == expected;
}

}  // namespace calm::transducer
