#ifndef CALM_TRANSDUCER_TRANSDUCER_H_
#define CALM_TRANSDUCER_TRANSDUCER_H_

#include <memory>
#include <string>

#include "base/instance.h"
#include "base/status.h"
#include "transducer/schema.h"

namespace calm::transducer {

// What a node sees during a transition (Section 4.1.3): its local input
// fragment H(x), its stored state s(x) (over out+mem), the delivered message
// set M, and the system facts S. D is their union.
struct StepInput {
  const Instance& local_input;
  const Instance& state;
  const Instance& messages;
  const Instance& system;

  Instance D() const {
    Instance d = local_input;
    d.InsertAll(state);
    d.InsertAll(messages);
    d.InsertAll(system);
    return d;
  }
};

// The results of the four queries on D.
struct StepOutput {
  Instance output;      // Qout(D), over out
  Instance insertions;  // Qins(D), over mem
  Instance deletions;   // Qdel(D), over mem
  Instance sends;       // Qsnd(D), over msg — sent to every *other* node
};

// A (policy-aware) relational transducer: the quadruple of queries
// (Qout, Qins, Qdel, Qsnd). Implementations must be deterministic functions
// of D; all persistent state lives in the mem relations.
class Transducer {
 public:
  virtual ~Transducer() = default;

  virtual const TransducerSchema& schema() const = 0;
  virtual Result<StepOutput> Step(const StepInput& input) const = 0;
  virtual std::string name() const = 0;
};

}  // namespace calm::transducer

#endif  // CALM_TRANSDUCER_TRANSDUCER_H_
