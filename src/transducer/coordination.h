#ifndef CALM_TRANSDUCER_COORDINATION_H_
#define CALM_TRANSDUCER_COORDINATION_H_

#include "transducer/network.h"

namespace calm::transducer {

// Tests clause (2) of Definition 3 (coordination-freeness) on one network
// and input: install the proofs' "ideal" distribution policy — every fact
// and domain value assigned to `target` — and run *heartbeat* transitions at
// `target` only (no communication). Returns true iff the network's output
// reaches `expected` within `max_heartbeats` transitions.
//
// The ideal all-to-one policy is domain-guided, so the same check covers
// both plain coordination-freeness and coordination-freeness under
// domain-guidance.
Result<bool> HeartbeatPrefixComputes(const Transducer& transducer,
                                     const ModelOptions& model,
                                     const Network& nodes, Value target,
                                     const Instance& input,
                                     const Instance& expected,
                                     size_t max_heartbeats = 64);

}  // namespace calm::transducer

#endif  // CALM_TRANSDUCER_COORDINATION_H_
