#include "transducer/compiler.h"

#include <map>

#include "datalog/analysis.h"

namespace calm::transducer {

namespace {

// A fresh variable v0, v1, ... per position.
datalog::Term Var(size_t i) {
  return datalog::Term::Var("v" + std::to_string(i));
}

datalog::Atom AtomOf(uint32_t relation, uint32_t arity) {
  std::vector<datalog::Term> args;
  args.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) args.push_back(Var(i));
  return datalog::Atom(relation, std::move(args));
}

datalog::Rule CopyRule(uint32_t from, uint32_t to, uint32_t arity) {
  datalog::Rule rule;
  rule.head = AtomOf(to, arity);
  rule.pos.push_back(AtomOf(from, arity));
  return rule;
}

}  // namespace

Result<DatalogTransducer> CompileBroadcast(const datalog::Program& program,
                                           std::string name) {
  CALM_ASSIGN_OR_RETURN(datalog::ProgramInfo info, datalog::Analyze(program));
  for (const datalog::Rule& rule : program.rules) {
    if (!rule.neg.empty()) {
      return InvalidArgumentError(
          "CompileBroadcast requires a positive program (rule '" +
          datalog::RuleToString(rule) +
          "' negates; see the absence / domain-request strategies)");
    }
    if (rule.head.invents) {
      return InvalidArgumentError("CompileBroadcast: invention not supported");
    }
  }
  if (info.uses_adom) {
    return InvalidArgumentError(
        "CompileBroadcast: programs reading Adom are not supported");
  }
  if (program.output_relations.empty()) {
    return InvalidArgumentError("CompileBroadcast: no output relations");
  }

  TransducerSchema schema;
  schema.in = info.edb;
  CALM_ASSIGN_OR_RETURN(Schema out_schema,
                        datalog::OutputSchema(program, info));
  schema.out = out_schema;

  datalog::Program qout;
  datalog::Program qins;
  datalog::Program qsnd;

  std::map<uint32_t, uint32_t> all_of;  // edb relation -> all__R id
  for (const RelationDecl& r : info.edb.relations()) {
    const std::string& base = NameOf(r.name);
    uint32_t msg = InternName("m__" + base);
    uint32_t got = InternName("got__" + base);
    uint32_t sent = InternName("sent__" + base);
    uint32_t all = InternName("all__" + base);
    all_of[r.name] = all;
    CALM_RETURN_IF_ERROR(schema.msg.AddRelation(RelationDecl(msg, r.arity)));
    CALM_RETURN_IF_ERROR(schema.mem.AddRelation(RelationDecl(got, r.arity)));
    CALM_RETURN_IF_ERROR(schema.mem.AddRelation(RelationDecl(sent, r.arity)));

    // Qsnd: m__R(v..) :- R(v..), !sent__R(v..).
    datalog::Rule send = CopyRule(r.name, msg, r.arity);
    send.neg.push_back(AtomOf(sent, r.arity));
    qsnd.rules.push_back(std::move(send));
    qsnd.output_relations.insert(msg);

    // Qins: got__R :- m__R.   sent__R :- R.
    qins.rules.push_back(CopyRule(msg, got, r.arity));
    qins.rules.push_back(CopyRule(r.name, sent, r.arity));
    qins.output_relations.insert(got);
    qins.output_relations.insert(sent);

    // Qout collection: all__R :- R | got__R | m__R.
    qout.rules.push_back(CopyRule(r.name, all, r.arity));
    qout.rules.push_back(CopyRule(got, all, r.arity));
    qout.rules.push_back(CopyRule(msg, all, r.arity));
  }

  // The user program with edb atoms renamed to their all__R collections.
  for (const datalog::Rule& rule : program.rules) {
    datalog::Rule renamed = rule;
    for (datalog::Atom& a : renamed.pos) {
      auto it = all_of.find(a.relation);
      if (it != all_of.end()) a.relation = it->second;
    }
    qout.rules.push_back(std::move(renamed));
  }
  qout.output_relations = program.output_relations;

  return DatalogTransducer::Create(std::move(schema),
                                   ModelOptions::Original(), std::move(qout),
                                   std::move(qins), datalog::Program{},
                                   std::move(qsnd), std::move(name));
}

}  // namespace calm::transducer
