#ifndef CALM_TRANSDUCER_RUNNER_H_
#define CALM_TRANSDUCER_RUNNER_H_

#include <functional>
#include <vector>

#include "net/fault.h"
#include "net/scheduler.h"
#include "transducer/network.h"

namespace calm::transducer {

struct RunOptions {
  enum class SchedulerKind { kRoundRobin, kRandom, kAdversarialDelay };
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;
  uint64_t seed = 0;
  double deliver_prob = 0.5;   // random scheduler only
  uint64_t max_delay = 16;     // random scheduler: fairness bound
  size_t max_transitions = 200000;

  // kAsync: the scheduler above drives fair runs. kBsp: supersteps — every
  // node (in node order) delivers its whole buffer, then the barrier
  // releases the superstep's sends, so a send at superstep k is delivered
  // exactly at k + 1. BSP runs are fully deterministic (the scheduler
  // fields are ignored) and model a perfect network: `faults` must be
  // null.
  NetworkSemantics semantics = NetworkSemantics::kAsync;

  // Fault injection: when set, attached to the network for the run (the
  // channel between the send path and the buffers; see net/fault.h). The
  // plan must outlive the call.
  net::FaultPlan* faults = nullptr;

  // Record every scheduler Choice into RunResult::choices — the
  // record/replay trace of the run's nondeterminism.
  bool record_choices = false;

  // Exhausting max_transitions becomes a DeadlineExceeded *error* (with the
  // RunStats rendered into the message) instead of quiesced = false.
  bool fail_on_budget = false;
};

// "round-robin", "random", "adversarial-delay".
const char* SchedulerKindName(RunOptions::SchedulerKind kind);

struct RunResult {
  Instance output;
  net::RunStats stats;
  bool quiesced = false;  // false = max_transitions hit before quiescence
  // The schedule actually taken, when RunOptions::record_choices is set.
  std::vector<net::Scheduler::Choice> choices;
  // kBsp only: barriers taken before quiescence (the last superstep is the
  // all-heartbeat round that confirmed it). 0 under kAsync.
  size_t supersteps = 0;
};

// Simulates a fair run until quiescence: all buffers empty (including the
// fault channel's retransmit queues) and a full round of heartbeats at every
// node changes nothing. Formal runs are infinite; quiescence means every
// continuation produces nothing further for the deterministic transducers
// built here, so out(R) is the returned output.
Result<RunResult> RunToQuiescence(TransducerNetwork& network,
                                  const RunOptions& options = {});

// Runs the same (transducer, policy, input) under several schedules and
// checks all runs produce the same output (the network "computes" a
// deterministic result). Returns that output, or FailedPrecondition naming
// the diverging schedule (scheduler kind + seed) on a mismatch.
struct ConsistencyOptions {
  size_t random_runs = 4;
  uint64_t seed = 0;
  size_t max_transitions = 200000;
};
Result<Instance> RunConsistently(
    const std::function<Result<TransducerNetwork*>()>& make_network,
    const ConsistencyOptions& options = {});

}  // namespace calm::transducer

#endif  // CALM_TRANSDUCER_RUNNER_H_
