#ifndef CALM_TRANSDUCER_DATALOG_TRANSDUCER_H_
#define CALM_TRANSDUCER_DATALOG_TRANSDUCER_H_

#include <memory>
#include <string>

#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/prepared.h"
#include "transducer/transducer.h"

namespace calm::transducer {

// A relational transducer whose four queries (Qout, Qins, Qdel, Qsnd) are
// stratified Datalog¬ programs over Yin + Yout + Ymsg + Ymem + Ysys — the
// concrete programming model of declarative networking. Each program reads
// the transition's D; its marked output relations must lie within the
// respective target schema (out / mem / mem / msg). Programs may define
// private scratch idb relations; those must not collide with schema names.
//
// Example (a broadcast transitive-closure node):
//   Qsnd:  mE(x, y) :- E(x, y), !sentE(x, y).
//   Qins:  sentE(x, y) :- E(x, y).  gotE(x, y) :- mE(x, y).
//   Qout:  EE(x,y) :- E(x,y).  EE(x,y) :- gotE(x,y).  EE(x,y) :- mE(x,y).
//          T(x,y) :- EE(x,y).  T(x,z) :- T(x,y), EE(y,z).
class DatalogTransducer : public Transducer {
 public:
  // Validates the four programs (stratifiable, outputs within targets).
  // Empty programs are allowed (e.g. no deletions). `model` is only used to
  // know which system relations the programs may read.
  static Result<DatalogTransducer> Create(
      TransducerSchema schema, const ModelOptions& model,
      datalog::Program qout, datalog::Program qins, datalog::Program qdel,
      datalog::Program qsnd, std::string name);

  // Parses the four programs from text; aborts on invalid input (for
  // statically known transducers in tests / examples).
  static DatalogTransducer FromTextOrDie(
      TransducerSchema schema, const ModelOptions& model,
      std::string_view qout, std::string_view qins, std::string_view qdel,
      std::string_view qsnd, std::string name);

  const TransducerSchema& schema() const override { return schema_; }
  std::string name() const override { return name_; }
  Result<StepOutput> Step(const StepInput& in) const override;

 private:
  DatalogTransducer() = default;

  // One of the four queries, compiled at Create; `prepared` is null for an
  // empty program. shared_ptr: transducers are copied by value into networks
  // and the prepared form is immutable, so copies share it.
  struct Part {
    std::shared_ptr<const datalog::PreparedProgram> prepared;
    Schema target;  // the program's marked output relations
  };

  Result<Instance> EvalPart(const Part& part, const Instance& d) const;

  TransducerSchema schema_;
  Part out_, ins_, del_, snd_;
  std::string name_;
};

}  // namespace calm::transducer

#endif  // CALM_TRANSDUCER_DATALOG_TRANSDUCER_H_
