// Tests for the bulk-synchronous (BSP) network semantics: sends staged
// during superstep k are delivered exactly at superstep k + 1, barrier
// quiescence, the perfect-network restriction, and async-vs-BSP output
// byte-identity for every Figure 2 strategy at several eval-thread counts.

#include <memory>

#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "net/fault.h"
#include "queries/graph_queries.h"
#include "queries/paper_programs.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/schema.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

namespace calm::transducer {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

TEST(Bsp, SendsAreStagedUntilTheBarrier) {
  auto tcq = queries::MakeTransitiveClosure();
  auto bcast = MakeBroadcastTransducer(tcq.get());
  Network nodes{V(900), V(901)};
  HashPolicy policy(nodes);
  TransducerNetwork net(nodes, bcast.get(), &policy,
                        ModelOptions::Original());
  Instance input = workload::RandomGraph(6, 0.4, 3);
  ASSERT_TRUE(net.Initialize(input).ok());
  net.set_semantics(NetworkSemantics::kBsp);

  // Superstep 0: both nodes heartbeat; every send is staged behind the
  // barrier, so no buffer sees a message within the sending superstep.
  ASSERT_TRUE(net.StepNode(nodes[0], {}).ok());
  ASSERT_TRUE(net.StepNode(nodes[1], {}).ok());
  EXPECT_GT(net.StagedCount(), 0u);
  EXPECT_TRUE(net.BuffersEmpty());
  // A staged send is still in flight: the network must not look quiescent.
  EXPECT_FALSE(net.Idle());

  // The barrier releases the whole superstep's sends at once: deliverable
  // exactly from superstep 1 on.
  net.BspBarrier();
  EXPECT_EQ(net.StagedCount(), 0u);
  EXPECT_FALSE(net.BuffersEmpty());
}

TEST(Bsp, AsyncModeStagesNothing) {
  auto tcq = queries::MakeTransitiveClosure();
  auto bcast = MakeBroadcastTransducer(tcq.get());
  Network nodes{V(900), V(901)};
  HashPolicy policy(nodes);
  TransducerNetwork net(nodes, bcast.get(), &policy,
                        ModelOptions::Original());
  ASSERT_TRUE(net.Initialize(workload::Path(3)).ok());
  ASSERT_TRUE(net.StepNode(nodes[0], {}).ok());
  EXPECT_EQ(net.StagedCount(), 0u);  // async sends go straight to buffers
}

TEST(Bsp, RejectsFaultPlans) {
  auto tcq = queries::MakeTransitiveClosure();
  auto bcast = MakeBroadcastTransducer(tcq.get());
  Network nodes{V(900), V(901)};
  HashPolicy policy(nodes);

  // The runner refuses the combination up front...
  TransducerNetwork net(nodes, bcast.get(), &policy,
                        ModelOptions::Original());
  ASSERT_TRUE(net.Initialize(workload::Path(3)).ok());
  net::FaultPlan plan = net::FaultPlan::Random(1, net::FaultProfile::Chaos());
  RunOptions ro;
  ro.semantics = NetworkSemantics::kBsp;
  ro.faults = &plan;
  EXPECT_FALSE(RunToQuiescence(net, ro).ok());

  // ...and so does StepNode itself if a plan is attached directly.
  TransducerNetwork net2(nodes, bcast.get(), &policy,
                         ModelOptions::Original());
  ASSERT_TRUE(net2.Initialize(workload::Path(3)).ok());
  net2.set_semantics(NetworkSemantics::kBsp);
  net2.set_fault_plan(&plan);
  EXPECT_FALSE(net2.StepNode(nodes[0], {}).ok());
}

TEST(Bsp, RunsToBarrierQuiescence) {
  auto tcq = queries::MakeTransitiveClosure();
  auto bcast = MakeBroadcastTransducer(tcq.get());
  Network nodes{V(900), V(901)};
  HashPolicy policy(nodes);
  Instance input = workload::RandomGraph(6, 0.3, 1);
  Instance expected = tcq->Eval(input).value();

  TransducerNetwork net(nodes, bcast.get(), &policy,
                        ModelOptions::Original());
  ASSERT_TRUE(net.Initialize(input).ok());
  RunOptions ro;
  ro.semantics = NetworkSemantics::kBsp;
  Result<RunResult> run = RunToQuiescence(net, ro);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->quiesced);
  // At least one working superstep plus the all-heartbeat one that
  // confirmed quiescence.
  EXPECT_GE(run->supersteps, 2u);
  EXPECT_EQ(run->output, expected);

  // Fully deterministic: a second run takes the same superstep count.
  TransducerNetwork net2(nodes, bcast.get(), &policy,
                         ModelOptions::Original());
  ASSERT_TRUE(net2.Initialize(input).ok());
  Result<RunResult> rerun = RunToQuiescence(net2, ro);
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(rerun->supersteps, run->supersteps);
  EXPECT_EQ(rerun->output, run->output);
}

// One Figure 2 strategy instance: query, transducer, policy, model, input.
struct StrategyCase {
  std::string name;
  const Query* query;
  std::unique_ptr<Transducer> transducer;
  std::unique_ptr<DistributionPolicy> policy;
  ModelOptions model;
  Instance input;
};

// Runs one case under async fair schedules and under BSP and asserts every
// quiescent output is byte-identical to the centralized evaluation.
void ExpectAsyncBspAgree(const StrategyCase& c) {
  Network nodes{V(900), V(901)};
  Instance expected = c.query->Eval(c.input).value();

  std::unique_ptr<TransducerNetwork> holder;
  auto make = [&]() -> Result<TransducerNetwork*> {
    holder = std::make_unique<TransducerNetwork>(nodes, c.transducer.get(),
                                                 c.policy.get(), c.model);
    CALM_RETURN_IF_ERROR(holder->Initialize(c.input));
    return holder.get();
  };
  ConsistencyOptions co;
  co.random_runs = 2;
  Result<Instance> async_out = RunConsistently(make, co);
  ASSERT_TRUE(async_out.ok()) << c.name << ": " << async_out.status().ToString();
  EXPECT_EQ(*async_out, expected) << c.name;

  TransducerNetwork net(nodes, c.transducer.get(), c.policy.get(), c.model);
  ASSERT_TRUE(net.Initialize(c.input).ok());
  RunOptions ro;
  ro.semantics = NetworkSemantics::kBsp;
  Result<RunResult> bsp = RunToQuiescence(net, ro);
  ASSERT_TRUE(bsp.ok()) << c.name << ": " << bsp.status().ToString();
  EXPECT_TRUE(bsp->quiesced) << c.name;
  EXPECT_EQ(bsp->output, expected) << c.name;
  EXPECT_EQ(bsp->output, *async_out) << c.name;
}

// The Figure 2 strategies (queries owned by the vector's closures below).
std::vector<StrategyCase> MakeFigure2Cases(
    std::vector<std::unique_ptr<Query>>* owned,
    std::vector<std::unique_ptr<datalog::DatalogQuery>>* owned_dl) {
  Network nodes{V(900), V(901)};
  std::vector<StrategyCase> cases;

  owned->push_back(queries::MakeTransitiveClosure());
  const Query* tc = owned->back().get();
  cases.push_back({"tc-broadcast", tc, MakeBroadcastTransducer(tc),
                   std::make_unique<HashPolicy>(nodes),
                   ModelOptions::Original(), workload::RandomGraph(6, 0.3, 1)});

  owned_dl->push_back(std::make_unique<datalog::DatalogQuery>(
      datalog::DatalogQuery::FromTextOrDie("O(x) :- V(x), !S(x).",
                                           "v-minus-s-sp")));
  const Query* sp = owned_dl->back().get();
  Instance sp_input{Fact("V", {V(1)}), Fact("V", {V(2)}), Fact("S", {V(2)})};
  cases.push_back({"sp-absence", sp, MakeAbsenceTransducer(sp),
                   std::make_unique<HashPolicy>(nodes),
                   ModelOptions::PolicyAware(), sp_input});

  owned->push_back(queries::MakeComplementTransitiveClosure());
  const Query* qtc = owned->back().get();
  cases.push_back({"qtc-domain-request", qtc, MakeDomainRequestTransducer(qtc),
                   std::make_unique<HashDomainGuidedPolicy>(nodes),
                   ModelOptions::PolicyAware(), workload::Path(4)});

  owned->push_back(queries::MakeWinMove());
  const Query* win = owned->back().get();
  Instance game{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)})};
  cases.push_back({"winmove-domain-request", win,
                   MakeDomainRequestTransducer(win),
                   std::make_unique<HashDomainGuidedPolicy>(nodes),
                   ModelOptions::PolicyAware(), game});
  return cases;
}

TEST(Bsp, AsyncAndBspAgreeOnEveryFigure2Strategy) {
  for (int threads : {1, 2, 8}) {
    datalog::SetDefaultEvalThreads(threads);
    std::vector<std::unique_ptr<Query>> owned;
    std::vector<std::unique_ptr<datalog::DatalogQuery>> owned_dl;
    // Queries are (re)built after the thread-count override so prepared
    // programs actually resolve to it.
    for (StrategyCase& c : MakeFigure2Cases(&owned, &owned_dl)) {
      SCOPED_TRACE("eval_threads=" + std::to_string(threads));
      ExpectAsyncBspAgree(c);
    }
  }
  datalog::SetDefaultEvalThreads(0);  // restore the environment default
}

TEST(Bsp, FaultedAsyncMatchesFaultlessBspWhereFairnessAllows) {
  // Chaos faults are fair (drops retransmit, crashes recover), so the async
  // run still quiesces on the same output the perfect-network BSP run
  // computes — the cross-model confluence the fuzzer asserts in bulk.
  std::vector<std::unique_ptr<Query>> owned;
  std::vector<std::unique_ptr<datalog::DatalogQuery>> owned_dl;
  for (StrategyCase& c : MakeFigure2Cases(&owned, &owned_dl)) {
    Network nodes{V(900), V(901)};
    Instance expected = c.query->Eval(c.input).value();

    net::FaultPlan plan =
        net::FaultPlan::Random(7, net::FaultProfile::Chaos());
    TransducerNetwork faulted(nodes, c.transducer.get(), c.policy.get(),
                              c.model);
    ASSERT_TRUE(faulted.Initialize(c.input).ok());
    RunOptions async_ro;
    async_ro.faults = &plan;
    Result<RunResult> async_run = RunToQuiescence(faulted, async_ro);
    ASSERT_TRUE(async_run.ok()) << c.name;
    ASSERT_TRUE(async_run->quiesced) << c.name;

    TransducerNetwork perfect(nodes, c.transducer.get(), c.policy.get(),
                              c.model);
    ASSERT_TRUE(perfect.Initialize(c.input).ok());
    RunOptions bsp_ro;
    bsp_ro.semantics = NetworkSemantics::kBsp;
    Result<RunResult> bsp_run = RunToQuiescence(perfect, bsp_ro);
    ASSERT_TRUE(bsp_run.ok()) << c.name;
    ASSERT_TRUE(bsp_run->quiesced) << c.name;

    EXPECT_EQ(async_run->output, expected) << c.name;
    EXPECT_EQ(bsp_run->output, async_run->output) << c.name;
  }
}

}  // namespace
}  // namespace calm::transducer
