#include <gtest/gtest.h>

#include <memory>

#include "queries/graph_queries.h"
#include "transducer/coordination.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/schema.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

namespace calm::transducer {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

// Example 4.1's policy P1: E(a, b) goes to node 1 if a is odd, else node 2.
class OddEvenPolicy : public DistributionPolicy {
 public:
  std::set<Value> NodesFor(const Fact& fact) const override {
    return {fact.args[0].payload() % 2 == 1 ? V(1) : V(2)};
  }
  std::string name() const override { return "odd-even"; }
};

// Example 4.1's domain assignment alpha: odd -> {1}, even -> {2}.
class OddEvenDomainPolicy : public DistributionPolicy {
 public:
  std::set<Value> NodesFor(const Fact& fact) const override {
    std::set<Value> out;
    for (Value v : fact.args) {
      for (Value n : NodesForValue(v)) out.insert(n);
    }
    return out;
  }
  bool is_domain_guided() const override { return true; }
  std::set<Value> NodesForValue(Value value) const override {
    return {value.payload() % 2 == 1 ? V(1) : V(2)};
  }
  std::string name() const override { return "odd-even-domain"; }
};

// The SP-Datalog specimen O = V \ S: non-monotone but in Mdistinct.
std::unique_ptr<Query> MakeVMinusS() {
  return std::make_unique<NativeQuery>(
      "v-minus-s", Schema({{"V", 1}, {"S", 1}}), Schema({{"O", 1}}),
      [](const Instance& in) -> Result<Instance> {
        Instance out;
        for (const Tuple& t : in.TuplesOf(InternName("V"))) {
          if (in.TuplesOf(InternName("S")).count(t) == 0) {
            out.Insert(Fact("O", t));
          }
        }
        return out;
      });
}

Instance ExpectedOutput(const Query& q, const Instance& in) {
  Result<Instance> r = q.Eval(in);
  EXPECT_TRUE(r.ok());
  return r.ok() ? r.value() : Instance{};
}

// Runs `transducer` on (nodes, policy, input) under round-robin + random
// schedules and expects the consistent output to equal Q(input).
void ExpectComputes(const Transducer& transducer, const Query& query,
                    const Network& nodes, const DistributionPolicy& policy,
                    const Instance& input, ModelOptions model) {
  std::unique_ptr<TransducerNetwork> holder;
  auto make = [&]() -> Result<TransducerNetwork*> {
    holder = std::make_unique<TransducerNetwork>(nodes, &transducer, &policy,
                                                 model);
    CALM_RETURN_IF_ERROR(holder->Initialize(input));
    return holder.get();
  };
  ConsistencyOptions co;
  co.random_runs = 3;
  Result<Instance> out = RunConsistently(make, co);
  ASSERT_TRUE(out.ok()) << transducer.name() << ": " << out.status();
  EXPECT_EQ(out.value(), ExpectedOutput(query, input)) << transducer.name();
}

// ---------------------------------------------------------------------------
// Policies and distribution (Example 4.1)
// ---------------------------------------------------------------------------

TEST(PolicyTest, Example41GeneralPolicy) {
  Instance i{Fact("E", {V(1), V(3)}), Fact("E", {V(3), V(4)}),
             Fact("E", {V(4), V(6)})};
  OddEvenPolicy p1;
  std::map<Value, Instance> dist = Distribute(p1, {V(1), V(2)}, i);
  EXPECT_EQ(dist[V(1)].size(), 2u);  // E(1,3), E(3,4)
  EXPECT_EQ(dist[V(2)].size(), 1u);  // E(4,6)
  EXPECT_TRUE(dist[V(2)].Contains(Fact("E", {V(4), V(6)})));
}

TEST(PolicyTest, Example41DomainGuidedPolicy) {
  Instance i{Fact("E", {V(1), V(3)}), Fact("E", {V(3), V(4)}),
             Fact("E", {V(4), V(6)})};
  OddEvenDomainPolicy p2;
  std::map<Value, Instance> dist = Distribute(p2, {V(1), V(2)}, i);
  // Node 1 gets facts containing an odd value; node 2 even.
  EXPECT_EQ(dist[V(1)].size(), 2u);  // E(1,3), E(3,4)
  EXPECT_EQ(dist[V(2)].size(), 2u);  // E(3,4), E(4,6) — replication!
  EXPECT_TRUE(dist[V(1)].Contains(Fact("E", {V(3), V(4)})));
  EXPECT_TRUE(dist[V(2)].Contains(Fact("E", {V(3), V(4)})));
}

TEST(PolicyTest, PoliciesCoverAllNodesNonempty) {
  Network nodes{V(1), V(2), V(3)};
  HashPolicy hash(nodes);
  HashDomainGuidedPolicy dom(nodes);
  Fact f("E", {V(7), V(8)});
  EXPECT_FALSE(hash.NodesFor(f).empty());
  EXPECT_FALSE(dom.NodesFor(f).empty());
  EXPECT_TRUE(dom.is_domain_guided());
  EXPECT_FALSE(hash.is_domain_guided());
}

// ---------------------------------------------------------------------------
// System relations (Example 4.2)
// ---------------------------------------------------------------------------

TEST(NetworkTest, SystemFactsPerExample42) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  OddEvenPolicy policy;
  Network nodes{V(1), V(2)};
  TransducerNetwork network(nodes, transducer.get(), &policy,
                            ModelOptions::PolicyAware());
  Instance input{Fact("E", {V(1), V(3)}), Fact("E", {V(3), V(4)}),
                 Fact("E", {V(4), V(6)})};
  ASSERT_TRUE(network.Initialize(input).ok());

  Result<Instance> s = network.SystemFactsFor(V(1), Instance{});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->Contains(Fact("Id", {V(1)})));
  EXPECT_TRUE(s->Contains(Fact("All", {V(1)})));
  EXPECT_TRUE(s->Contains(Fact("All", {V(2)})));
  // A = N + adom(local) = {1,2} + {1,3,4}.
  for (uint64_t a : {1, 2, 3, 4}) {
    EXPECT_TRUE(s->Contains(Fact("MyAdom", {V(a)}))) << a;
  }
  EXPECT_FALSE(s->Contains(Fact("MyAdom", {V(6)})));
  // policy_E(a, b) for odd a over A.
  EXPECT_TRUE(s->Contains(Fact("policy_E", {V(3), V(2)})));
  EXPECT_FALSE(s->Contains(Fact("policy_E", {V(4), V(3)})));
}

TEST(NetworkTest, NoAllModelHidesAllAndShrinksA) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  AllToOnePolicy policy(V(1));
  Network nodes{V(1), V(2)};
  TransducerNetwork network(nodes, transducer.get(), &policy,
                            ModelOptions::PolicyAwareNoAll());
  Instance input{Fact("E", {V(5), V(6)})};
  ASSERT_TRUE(network.Initialize(input).ok());
  Result<Instance> s = network.SystemFactsFor(V(1), Instance{});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->TuplesOf(InternName("All")).empty());
  EXPECT_TRUE(s->Contains(Fact("MyAdom", {V(1)})));   // self
  EXPECT_FALSE(s->Contains(Fact("MyAdom", {V(2)})));  // other node hidden
  EXPECT_TRUE(s->Contains(Fact("MyAdom", {V(5)})));
}

TEST(NetworkTest, ObliviousModelHidesIdAndAll) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  AllToOnePolicy policy(V(1));
  Network nodes{V(1), V(2)};
  TransducerNetwork network(nodes, transducer.get(), &policy,
                            ModelOptions::Oblivious());
  ASSERT_TRUE(network.Initialize(Instance{Fact("E", {V(5), V(6)})}).ok());
  Result<Instance> s = network.SystemFactsFor(V(1), Instance{});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());  // oblivious: no Id, no All, not policy-aware
}

// ---------------------------------------------------------------------------
// Broadcast strategy computes monotone queries (F0 direction of Cor. 4.6)
// ---------------------------------------------------------------------------

TEST(BroadcastStrategyTest, ComputesTcOnVariousNetworks) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  Instance input = workload::RandomGraph(7, 0.25, /*seed=*/5);
  for (size_t n : {1u, 2u, 3u}) {
    Network nodes;
    for (size_t k = 0; k < n; ++k) nodes.push_back(V(100 + k));
    HashPolicy policy(nodes, /*salt=*/n);
    ExpectComputes(*transducer, *tc, nodes, policy, input,
                   ModelOptions::Original());
  }
}

TEST(BroadcastStrategyTest, WorksInObliviousModel) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  Network nodes{V(100), V(101)};
  HashPolicy policy(nodes);
  ExpectComputes(*transducer, *tc, nodes, policy, workload::Cycle(4),
                 ModelOptions::Oblivious());
}

TEST(BroadcastStrategyTest, WrongForNonMonotoneQuery) {
  // V \ S with broadcast: a node may output O(a) before S(a) arrives, and
  // outputs are never retracted — the network does NOT compute the query.
  auto q = MakeVMinusS();
  auto transducer = MakeBroadcastTransducer(q.get());
  Network nodes{V(100), V(101)};
  // Adversarial split: V(1) on one node, S(1) on the other.
  std::map<Fact, std::set<Value>> overrides{
      {Fact("V", {V(1)}), {V(100)}},
      {Fact("S", {V(1)}), {V(101)}},
  };
  HashPolicy base(nodes);
  OverridePolicy policy(&base, overrides);
  Instance input{Fact("V", {V(1)}), Fact("S", {V(1)})};

  TransducerNetwork network(nodes, transducer.get(), &policy,
                            ModelOptions::Original());
  ASSERT_TRUE(network.Initialize(input).ok());
  RunOptions ro;
  Result<RunResult> r = RunToQuiescence(network, ro);
  ASSERT_TRUE(r.ok()) << r.status();
  // Q(input) is empty, but the broadcast network leaks O(1).
  EXPECT_TRUE(r->output.Contains(Fact("O", {V(1)})));
}

// ---------------------------------------------------------------------------
// Absence strategy computes Mdistinct queries (Theorem 4.3 construction)
// ---------------------------------------------------------------------------

TEST(AbsenceStrategyTest, ComputesVMinusS) {
  auto q = MakeVMinusS();
  auto transducer = MakeAbsenceTransducer(q.get());
  Instance input{Fact("V", {V(1)}), Fact("V", {V(2)}), Fact("V", {V(3)}),
                 Fact("S", {V(2)})};
  for (size_t n : {1u, 2u, 3u}) {
    Network nodes;
    for (size_t k = 0; k < n; ++k) nodes.push_back(V(100 + k));
    HashPolicy policy(nodes, /*salt=*/7 * n);
    ExpectComputes(*transducer, *q, nodes, policy, input,
                   ModelOptions::PolicyAware());
  }
}

TEST(AbsenceStrategyTest, AdversarialSplitStillCorrect) {
  auto q = MakeVMinusS();
  auto transducer = MakeAbsenceTransducer(q.get());
  Network nodes{V(100), V(101)};
  std::map<Fact, std::set<Value>> overrides{
      {Fact("V", {V(1)}), {V(100)}},
      {Fact("S", {V(1)}), {V(101)}},
  };
  HashPolicy base(nodes);
  OverridePolicy policy(&base, overrides);
  Instance input{Fact("V", {V(1)}), Fact("S", {V(1)})};
  ExpectComputes(*transducer, *q, nodes, policy, input,
                 ModelOptions::PolicyAware());
}

TEST(AbsenceStrategyTest, WorksWithoutAllRelation) {
  // Theorem 4.5: the construction never reads All.
  auto q = MakeVMinusS();
  auto transducer = MakeAbsenceTransducer(q.get());
  Network nodes{V(100), V(101)};
  HashPolicy policy(nodes);
  Instance input{Fact("V", {V(1)}), Fact("V", {V(2)}), Fact("S", {V(2)})};
  ExpectComputes(*transducer, *q, nodes, policy, input,
                 ModelOptions::PolicyAwareNoAll());
}

// ---------------------------------------------------------------------------
// Domain-request strategy computes Mdisjoint queries (Theorem 4.4)
// ---------------------------------------------------------------------------

TEST(DomainRequestStrategyTest, ComputesWinMove) {
  auto q = queries::MakeWinMove();
  auto transducer = MakeDomainRequestTransducer(q.get());
  Instance input{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)}),
                 Fact("Move", {V(3), V(4)}), Fact("Move", {V(4), V(3)})};
  for (size_t n : {1u, 2u, 3u}) {
    Network nodes;
    for (size_t k = 0; k < n; ++k) nodes.push_back(V(100 + k));
    HashDomainGuidedPolicy policy(nodes, /*salt=*/n);
    ExpectComputes(*transducer, *q, nodes, policy, input,
                   ModelOptions::PolicyAware());
  }
}

TEST(DomainRequestStrategyTest, ComputesComplementTc) {
  auto q = queries::MakeComplementTransitiveClosure();
  auto transducer = MakeDomainRequestTransducer(q.get());
  Instance input = workload::Path(4);
  Network nodes{V(100), V(101)};
  HashDomainGuidedPolicy policy(nodes);
  ExpectComputes(*transducer, *q, nodes, policy, input,
                 ModelOptions::PolicyAware());
}

TEST(DomainRequestStrategyTest, WorksWithoutAllRelation) {
  auto q = queries::MakeWinMove();
  auto transducer = MakeDomainRequestTransducer(q.get());
  Network nodes{V(100), V(101)};
  HashDomainGuidedPolicy policy(nodes);
  Instance input{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)})};
  ExpectComputes(*transducer, *q, nodes, policy, input,
                 ModelOptions::PolicyAwareNoAll());
}

TEST(DomainRequestStrategyTest, Example41DomainPolicy) {
  auto q = queries::MakeComplementTransitiveClosure();
  auto transducer = MakeDomainRequestTransducer(q.get());
  Network nodes{V(1), V(2)};
  OddEvenDomainPolicy policy;
  Instance input{Fact("E", {V(1), V(3)}), Fact("E", {V(3), V(4)}),
                 Fact("E", {V(4), V(6)})};
  ExpectComputes(*transducer, *q, nodes, policy, input,
                 ModelOptions::PolicyAware());
}

// ---------------------------------------------------------------------------
// Coordination-freeness (Definition 3): ideal policy + heartbeat-only prefix
// ---------------------------------------------------------------------------

TEST(CoordinationFreenessTest, BroadcastHeartbeatPrefix) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  Instance input = workload::Cycle(4);
  Network nodes{V(100), V(101), V(102)};
  Result<bool> ok = HeartbeatPrefixComputes(
      *transducer, ModelOptions::Original(), nodes, V(101), input,
      ExpectedOutput(*tc, input));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(ok.value());
}

TEST(CoordinationFreenessTest, AbsenceHeartbeatPrefix) {
  auto q = MakeVMinusS();
  auto transducer = MakeAbsenceTransducer(q.get());
  Instance input{Fact("V", {V(1)}), Fact("V", {V(2)}), Fact("S", {V(2)})};
  Network nodes{V(100), V(101)};
  Result<bool> ok = HeartbeatPrefixComputes(
      *transducer, ModelOptions::PolicyAware(), nodes, V(100), input,
      ExpectedOutput(*q, input));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(ok.value());
}

TEST(CoordinationFreenessTest, DomainRequestHeartbeatPrefix) {
  auto q = queries::MakeWinMove();
  auto transducer = MakeDomainRequestTransducer(q.get());
  Instance input{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)})};
  Network nodes{V(100), V(101)};
  Result<bool> ok = HeartbeatPrefixComputes(
      *transducer, ModelOptions::PolicyAware(), nodes, V(101), input,
      ExpectedOutput(*q, input));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(ok.value());
}

// ---------------------------------------------------------------------------
// Proof replay: F1 <= Mdistinct (Theorem 4.3's policy-splitting argument)
// ---------------------------------------------------------------------------

TEST(ProofReplayTest, Theorem43PolicySplitting) {
  // Pi computes Q (= V \ S, in Mdistinct). Take I and a domain-distinct J.
  // Under P2 (J assigned entirely to y), node x's local input on I+J equals
  // its local input on I under the ideal P1, so a heartbeat-only prefix at x
  // still outputs Q(I) — and because the run extends to a fair run
  // computing Q(I+J), Q(I) <= Q(I+J).
  auto q = MakeVMinusS();
  auto transducer = MakeAbsenceTransducer(q.get());
  Network nodes{V(100), V(101)};
  Value x = V(100);
  Value y = V(101);

  Instance i{Fact("V", {V(1)}), Fact("S", {V(1)}), Fact("V", {V(2)})};
  Instance j{Fact("V", {V(7)}), Fact("S", {V(8)})};  // domain distinct
  ASSERT_TRUE(IsDomainDistinctFrom(j, i));

  AllToOnePolicy p1(x);
  std::map<Fact, std::set<Value>> to_y;
  j.ForEachFact([&](uint32_t name, const Tuple& t) {
    to_y[Fact(name, t)] = {y};
  });
  OverridePolicy p2(&p1, to_y);

  // Heartbeat-only prefix at x on input I+J under P2 produces Q(I).
  TransducerNetwork network(nodes, transducer.get(), &p2,
                            ModelOptions::PolicyAware());
  ASSERT_TRUE(network.Initialize(Instance::Union(i, j)).ok());
  EXPECT_EQ(network.local_input(x), i);  // x cannot tell I+J from I
  for (int k = 0; k < 8; ++k) ASSERT_TRUE(network.Heartbeat(x).ok());
  Instance q_i = ExpectedOutput(*q, i);
  EXPECT_TRUE(q_i.IsSubsetOf(network.GlobalOutput()));

  // Extending to a full fair run yields Q(I+J), so Q(I) <= Q(I+J).
  RunOptions ro;
  Result<RunResult> rest = RunToQuiescence(network, ro);
  ASSERT_TRUE(rest.ok());
  Instance q_ij = ExpectedOutput(*q, Instance::Union(i, j));
  EXPECT_EQ(rest->output, q_ij);
  EXPECT_TRUE(q_i.IsSubsetOf(q_ij));
}

// ---------------------------------------------------------------------------
// Stats sanity
// ---------------------------------------------------------------------------

TEST(StatsTest, SingleNodeSendsNothing) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  Network nodes{V(100)};
  HashPolicy policy(nodes);
  TransducerNetwork network(nodes, transducer.get(), &policy,
                            ModelOptions::Original());
  ASSERT_TRUE(network.Initialize(workload::Path(3)).ok());
  Result<RunResult> r = RunToQuiescence(network);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.messages_sent, 0u);
  EXPECT_GT(r->stats.transitions, 0u);
}

TEST(StatsTest, MessagesScaleWithFanout) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  Instance input = workload::Path(5);  // 4 facts
  size_t prev = 0;
  for (size_t n : {2u, 3u, 4u}) {
    Network nodes;
    for (size_t k = 0; k < n; ++k) nodes.push_back(V(100 + k));
    HashPolicy policy(nodes);
    TransducerNetwork network(nodes, transducer.get(), &policy,
                              ModelOptions::Original());
    ASSERT_TRUE(network.Initialize(input).ok());
    Result<RunResult> r = RunToQuiescence(network);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->quiesced);
    // Each fact is broadcast once to n-1 recipients: 4 * (n-1) messages.
    EXPECT_EQ(r->stats.messages_sent, 4 * (n - 1));
    EXPECT_GT(r->stats.messages_sent, prev);
    prev = r->stats.messages_sent;
  }
}


// ---------------------------------------------------------------------------
// Error paths and negative cases
// ---------------------------------------------------------------------------

TEST(SchemaValidationTest, RejectsNameCollisions) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  TransducerSchema bad = transducer->schema();
  // Colliding a memory relation with an input relation name.
  ASSERT_TRUE(bad.mem.AddRelation("E", 2).ok());
  EXPECT_FALSE(bad.Validate(ModelOptions::Original()).ok());
}

TEST(SchemaValidationTest, SystemSchemaTracksModel) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  const TransducerSchema& schema = transducer->schema();
  Schema full = schema.SystemSchema(ModelOptions::PolicyAware());
  EXPECT_TRUE(full.ContainsName("Id"));
  EXPECT_TRUE(full.ContainsName("All"));
  EXPECT_TRUE(full.ContainsName("MyAdom"));
  EXPECT_TRUE(full.ContainsName("policy_E"));
  Schema oblivious = schema.SystemSchema(ModelOptions::Oblivious());
  EXPECT_TRUE(oblivious.empty());
  Schema noall = schema.SystemSchema(ModelOptions::PolicyAwareNoAll());
  EXPECT_FALSE(noall.ContainsName("All"));
  EXPECT_TRUE(noall.ContainsName("MyAdom"));
}

TEST(NetworkErrorTest, RejectsEmptyNetworkAndBadInput) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  HashPolicy policy({V(900)});
  TransducerNetwork empty({}, transducer.get(), &policy,
                          ModelOptions::Original());
  EXPECT_FALSE(empty.Initialize(Instance{}).ok());

  TransducerNetwork net({V(900)}, transducer.get(), &policy,
                        ModelOptions::Original());
  // Input fact outside Yin.
  EXPECT_FALSE(net.Initialize(Instance{Fact("Zed", {V(1)})}).ok());
  EXPECT_FALSE(net.Initialize(Instance{Fact("E", {V(1)})}).ok());  // arity
}

TEST(NetworkErrorTest, StepOnUnknownNodeFails) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  HashPolicy policy({V(900)});
  TransducerNetwork net({V(900)}, transducer.get(), &policy,
                        ModelOptions::Original());
  ASSERT_TRUE(net.Initialize(Instance{}).ok());
  EXPECT_FALSE(net.StepNode(V(999), {}).ok());
}

TEST(CoordinationTest, HeartbeatPrefixFailsForWrongExpectation) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  Instance input = workload::Path(3);
  Instance wrong{Fact("T", {V(5), V(6)})};
  Result<bool> hb = HeartbeatPrefixComputes(*transducer,
                                            ModelOptions::Original(),
                                            {V(900), V(901)}, V(900), input,
                                            wrong, /*max_heartbeats=*/8);
  ASSERT_TRUE(hb.ok());
  EXPECT_FALSE(hb.value());
}

TEST(RunnerTest, MaxTransitionsGuardsNonQuiescence) {
  auto tc = queries::MakeTransitiveClosure();
  auto transducer = MakeBroadcastTransducer(tc.get());
  Network nodes{V(900), V(901)};
  HashPolicy policy(nodes);
  TransducerNetwork net(nodes, transducer.get(), &policy,
                        ModelOptions::Original());
  ASSERT_TRUE(net.Initialize(workload::Path(4)).ok());
  RunOptions ro;
  ro.max_transitions = 2;  // too few to quiesce
  Result<RunResult> r = RunToQuiescence(net, ro);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->quiesced);
}

}  // namespace
}  // namespace calm::transducer
