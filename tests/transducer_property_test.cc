// Parameterized correctness matrix for the strategy transducers: every
// (strategy, query, network size, schedule seed) combination must compute
// the query; plus robustness under message duplication (buffers are
// multisets — the same message may be in flight several times).

#include <gtest/gtest.h>

#include <memory>

#include "queries/graph_queries.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

namespace calm::transducer {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

std::unique_ptr<Query> MakeVMinusS() {
  return std::make_unique<NativeQuery>(
      "v-minus-s", Schema({{"V", 1}, {"S", 1}}), Schema({{"O", 1}}),
      [](const Instance& in) -> Result<Instance> {
        Instance out;
        for (const Tuple& t : in.TuplesOf(InternName("V"))) {
          if (in.TuplesOf(InternName("S")).count(t) == 0) {
            out.Insert(Fact("O", t));
          }
        }
        return out;
      });
}

enum class Strategy { kBroadcast, kAbsence, kDomainRequest };

struct Combo {
  Strategy strategy;
  size_t nodes;
  uint64_t seed;
};

class StrategyMatrix : public ::testing::TestWithParam<Combo> {
 protected:
  // Query + input appropriate for the strategy's class.
  static std::unique_ptr<Query> MakeQuery(Strategy s) {
    switch (s) {
      case Strategy::kBroadcast:
        return queries::MakeTransitiveClosure();
      case Strategy::kAbsence:
        return MakeVMinusS();
      case Strategy::kDomainRequest:
        return queries::MakeWinMove();
    }
    return nullptr;
  }

  static Instance MakeInput(Strategy s, uint64_t seed) {
    switch (s) {
      case Strategy::kBroadcast:
        return workload::RandomGraph(6, 0.3, seed);
      case Strategy::kAbsence: {
        Instance in;
        for (uint64_t k = 0; k < 4; ++k) in.Insert(Fact("V", {V(k)}));
        in.Insert(Fact("S", {V(seed % 4)}));
        return in;
      }
      case Strategy::kDomainRequest: {
        Instance graph = workload::RandomGraph(5, 0.35, seed);
        Instance in;
        for (const Tuple& t : graph.TuplesOf(InternName("E"))) {
          in.Insert(Fact("Move", t));
        }
        return in;
      }
    }
    return {};
  }

  static std::unique_ptr<Transducer> MakeStrategy(Strategy s, const Query* q) {
    switch (s) {
      case Strategy::kBroadcast:
        return MakeBroadcastTransducer(q);
      case Strategy::kAbsence:
        return MakeAbsenceTransducer(q);
      case Strategy::kDomainRequest:
        return MakeDomainRequestTransducer(q);
    }
    return nullptr;
  }
};

TEST_P(StrategyMatrix, ComputesUnderRandomFairSchedule) {
  const Combo& combo = GetParam();
  std::unique_ptr<Query> q = MakeQuery(combo.strategy);
  std::unique_ptr<Transducer> t = MakeStrategy(combo.strategy, q.get());
  Instance input = MakeInput(combo.strategy, combo.seed);
  Instance expected = q->Eval(input).value();

  Network nodes;
  for (size_t k = 0; k < combo.nodes; ++k) nodes.push_back(V(900 + k));
  std::unique_ptr<DistributionPolicy> policy;
  if (combo.strategy == Strategy::kDomainRequest) {
    policy = std::make_unique<HashDomainGuidedPolicy>(nodes, combo.seed);
  } else {
    policy = std::make_unique<HashPolicy>(nodes, combo.seed);
  }
  ModelOptions model = combo.strategy == Strategy::kBroadcast
                           ? ModelOptions::Original()
                           : ModelOptions::PolicyAware();

  TransducerNetwork network(nodes, t.get(), policy.get(), model);
  ASSERT_TRUE(network.Initialize(input).ok());
  RunOptions ro;
  ro.scheduler = RunOptions::SchedulerKind::kRandom;
  ro.seed = combo.seed * 31 + combo.nodes;
  ro.deliver_prob = 0.4;
  Result<RunResult> r = RunToQuiescence(network, ro);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->quiesced);
  EXPECT_EQ(r->output, expected);
}

std::vector<Combo> AllCombos() {
  std::vector<Combo> out;
  for (Strategy s : {Strategy::kBroadcast, Strategy::kAbsence,
                     Strategy::kDomainRequest}) {
    for (size_t n : {1u, 2u, 3u, 4u}) {
      for (uint64_t seed : {1u, 2u, 3u}) out.push_back({s, n, seed});
    }
  }
  return out;
}

std::string ComboName(const ::testing::TestParamInfo<Combo>& info) {
  static const char* const kNames[] = {"broadcast", "absence", "request"};
  return std::string(kNames[static_cast<int>(info.param.strategy)]) + "_n" +
         std::to_string(info.param.nodes) + "_s" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(Matrix, StrategyMatrix,
                         ::testing::ValuesIn(AllCombos()), ComboName);

// ---------------------------------------------------------------------------
// Failure injection: duplicated messages.
// ---------------------------------------------------------------------------

class DuplicationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DuplicationTest, StrategiesSurviveDuplicatedMessages) {
  uint64_t seed = GetParam();
  auto q = queries::MakeWinMove();
  auto t = MakeDomainRequestTransducer(q.get());
  Instance graph = workload::RandomGraph(5, 0.35, seed);
  Instance input;
  for (const Tuple& tu : graph.TuplesOf(InternName("E"))) {
    input.Insert(Fact("Move", tu));
  }
  Instance expected = q->Eval(input).value();

  Network nodes{V(900), V(901)};
  HashDomainGuidedPolicy policy(nodes, seed);
  TransducerNetwork network(nodes, t.get(), &policy,
                            ModelOptions::PolicyAware());
  ASSERT_TRUE(network.Initialize(input).ok());

  // Interleave: run a few steps, then duplicate every buffered message
  // (legal — buffers are multisets and the same fact can be in flight more
  // than once), then run to quiescence.
  {
    for (int k = 0; k < 4; ++k) {
      Value n = nodes[k % nodes.size()];
      std::vector<size_t> all;
      for (size_t i = 0; i < network.buffer(n).size(); ++i) all.push_back(i);
      ASSERT_TRUE(network.StepNode(n, all).ok());
    }
    for (Value n : nodes) {
      net::MessageBuffer& buf = network.mutable_buffer(n);
      std::vector<net::MessageBuffer::Entry> copy = buf.entries();
      for (const auto& e : copy) buf.Add(e.fact, e.enqueued_at);
    }
  }
  Result<RunResult> r = RunToQuiescence(network);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->quiesced);
  EXPECT_EQ(r->output, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DuplicationTest,
                         ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace calm::transducer
