#include <gtest/gtest.h>

#include "monotonicity/ladder.h"
#include "queries/graph_queries.h"

namespace calm::monotonicity {
namespace {

ExhaustiveOptions SmallSpace() {
  ExhaustiveOptions o;
  o.domain_size = 3;
  o.max_facts_i = 3;
  o.fresh_values = 2;
  return o;
}

TEST(LadderTest, MonotoneQueryIsAllYes) {
  auto tc = queries::MakeTransitiveClosure();
  Result<Ladder> ladder = ComputeLadder(*tc, 3, SmallSpace());
  ASSERT_TRUE(ladder.ok());
  for (const LadderRow& row : ladder->rows) {
    EXPECT_TRUE(row.in_m && row.in_distinct && row.in_disjoint) << row.i;
  }
  EXPECT_EQ(ladder->FirstDistinctViolation(), 0u);
  EXPECT_EQ(ladder->FirstDisjointViolation(), 0u);
}

TEST(LadderTest, Clique3RungMatchesTheorem313) {
  // Q^3_clique = Q^{i+2} with i = 1: in M^1_distinct, out at M^2_distinct.
  auto q = queries::MakeCliqueQuery(3);
  ExhaustiveOptions o = SmallSpace();
  o.fresh_values = 1;
  Result<Ladder> ladder = ComputeLadder(*q, 3, o);
  ASSERT_TRUE(ladder.ok());
  EXPECT_EQ(ladder->FirstDistinctViolation(), 2u);
  EXPECT_TRUE(ladder->rows[0].in_distinct);
  EXPECT_FALSE(ladder->rows[1].in_distinct);
  // The witness at the violating rung is recorded.
  ASSERT_TRUE(ladder->rows[1].distinct_witness.has_value());
  EXPECT_FALSE(ladder->rows[1].distinct_witness->ToString().empty());
}

TEST(LadderTest, Star2RungMatchesTheorem314) {
  // Q^2_star = Q^{i+1} with i = 1: in M^1_disjoint, out at M^2_disjoint,
  // and out of M^1_distinct already.
  auto q = queries::MakeStarQuery(2);
  ExhaustiveOptions o = SmallSpace();
  o.fresh_values = 3;
  Result<Ladder> ladder = ComputeLadder(*q, 2, o);
  ASSERT_TRUE(ladder.ok());
  EXPECT_EQ(ladder->FirstDisjointViolation(), 2u);
  EXPECT_EQ(ladder->FirstDistinctViolation(), 1u);
}

TEST(LadderTest, RowsAreInternallyConsistent) {
  // in M^i implies in M^i_distinct implies in M^i_disjoint, per row.
  auto q = queries::MakeComplementTransitiveClosure();
  ExhaustiveOptions o = SmallSpace();
  o.domain_size = 2;
  o.max_facts_i = 2;
  Result<Ladder> ladder = ComputeLadder(*q, 3, o);
  ASSERT_TRUE(ladder.ok());
  for (const LadderRow& row : ladder->rows) {
    if (row.in_m) {
      EXPECT_TRUE(row.in_distinct);
    }
    if (row.in_distinct) {
      EXPECT_TRUE(row.in_disjoint);
    }
  }
}

TEST(LadderTest, ToStringRendersTable) {
  auto tc = queries::MakeTransitiveClosure();
  ExhaustiveOptions o = SmallSpace();
  o.domain_size = 2;
  o.max_facts_i = 2;
  Result<Ladder> ladder = ComputeLadder(*tc, 2, o);
  ASSERT_TRUE(ladder.ok());
  std::string table = ladder->ToString();
  EXPECT_NE(table.find("M^i_distinct"), std::string::npos);
  EXPECT_NE(table.find("yes"), std::string::npos);
}

}  // namespace
}  // namespace calm::monotonicity
