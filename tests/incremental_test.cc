// Parity and rollback tests for incremental union evaluation (DESIGN.md
// "Incremental evaluation and epoch-versioned storage"): EvalOverlay over a
// materialized base fixpoint must produce byte-identical facts to the
// from-scratch EvalParts run on every overlay — across random stratified
// programs, the Adom/negation recompute path, the fallback gates, and
// repeated overlays on one evaluator (which exercises the epoch rollback
// and base-row restoration between checks). The checker-level tests pin
// verdict identity between --incremental=on and off at several thread
// counts, for both Datalog and native closure queries.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "base/instance.h"
#include "base/query.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/prepared.h"
#include "datalog/program.h"
#include "datalog/relstore.h"
#include "monotonicity/checker.h"
#include "queries/graph_queries.h"

namespace calm::datalog {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

size_t Rand(std::mt19937& rng, size_t bound) {
  return std::uniform_int_distribution<size_t>(0, bound - 1)(rng);
}

bool Chance(std::mt19937& rng, double p) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
}

// The engine-diff vocabulary (tests/engine_diff_test.cc): stratum 0 is edb,
// negation only references strictly lower strata, so generated programs are
// always stratifiable.
struct RelSpec {
  const char* name;
  uint32_t arity;
  size_t stratum;
};

constexpr RelSpec kRels[] = {
    {"E", 2, 0}, {"F", 1, 0}, {"G", 3, 0},  // edb
    {"P", 2, 1}, {"Q", 1, 1},               // idb, stratum 1
    {"R", 2, 2}, {"S", 1, 2},               // idb, stratum 2
};
constexpr size_t kNumRels = sizeof(kRels) / sizeof(kRels[0]);
constexpr const char* kVars[] = {"x", "y", "z", "w", "v"};

std::string RandomRule(std::mt19937& rng, size_t head) {
  const size_t stratum = kRels[head].stratum;
  std::vector<std::string> bound;
  std::string body;
  const size_t natoms = 1 + Rand(rng, 3);
  for (size_t a = 0; a < natoms; ++a) {
    size_t rel = Rand(rng, kNumRels);
    while (kRels[rel].stratum > stratum) rel = Rand(rng, kNumRels);
    if (!body.empty()) body += ", ";
    body += kRels[rel].name;
    body += '(';
    for (uint32_t i = 0; i < kRels[rel].arity; ++i) {
      if (i > 0) body += ", ";
      if (Chance(rng, 0.15)) {
        body += std::to_string(Rand(rng, 5));
      } else {
        const char* var = kVars[Rand(rng, 5)];
        body += var;
        bound.push_back(var);
      }
    }
    body += ')';
  }
  auto bound_or_const = [&]() -> std::string {
    if (!bound.empty() && !Chance(rng, 0.1)) {
      return bound[Rand(rng, bound.size())];
    }
    return std::to_string(Rand(rng, 5));
  };
  if (Chance(rng, 0.4) && stratum > 0) {
    size_t rel = Rand(rng, kNumRels);
    while (kRels[rel].stratum >= stratum) rel = Rand(rng, kNumRels);
    body += ", !";
    body += kRels[rel].name;
    body += '(';
    for (uint32_t i = 0; i < kRels[rel].arity; ++i) {
      if (i > 0) body += ", ";
      body += bound_or_const();
    }
    body += ')';
  }
  std::string rule = kRels[head].name;
  rule += '(';
  for (uint32_t i = 0; i < kRels[head].arity; ++i) {
    if (i > 0) rule += ", ";
    rule += bound_or_const();
  }
  rule += ") :- " + body + ".";
  return rule;
}

std::string RandomProgram(std::mt19937& rng) {
  std::string text;
  for (size_t rel = 0; rel < kNumRels; ++rel) {
    if (kRels[rel].stratum == 0) continue;
    const size_t nrules = 1 + Rand(rng, 3);
    for (size_t r = 0; r < nrules; ++r) {
      text += RandomRule(rng, rel);
      text += '\n';
    }
  }
  return text;
}

Instance RandomBase(std::mt19937& rng) {
  Instance in;
  const size_t nfacts = Rand(rng, 12);
  for (size_t i = 0; i < nfacts; ++i) {
    switch (Rand(rng, 3)) {
      case 0:
        in.Insert(Fact("E", {V(Rand(rng, 5)), V(Rand(rng, 5))}));
        break;
      case 1:
        in.Insert(Fact("F", {V(Rand(rng, 5))}));
        break;
      default:
        in.Insert(
            Fact("G", {V(Rand(rng, 5)), V(Rand(rng, 5)), V(Rand(rng, 5))}));
        break;
    }
  }
  return in;
}

// Overlays mix old values (0..4) with fresh ones (100..) and occasionally
// include an IDB fact, which the incremental path cannot absorb — that J
// must take the fallback route and still agree with the from-scratch run.
Instance RandomOverlay(std::mt19937& rng) {
  Instance j;
  const size_t nfacts = Rand(rng, 4);  // includes the empty overlay
  auto val = [&]() {
    return Chance(rng, 0.5) ? V(Rand(rng, 5)) : V(100 + Rand(rng, 3));
  };
  for (size_t i = 0; i < nfacts; ++i) {
    switch (Rand(rng, 8)) {
      case 0:
        j.Insert(Fact("F", {val()}));
        break;
      case 1:
        j.Insert(Fact("G", {val(), val(), val()}));
        break;
      case 2:
        j.Insert(Fact("P", {val(), val()}));  // idb: forces fallback
        break;
      default:
        j.Insert(Fact("E", {val(), val()}));
        break;
    }
  }
  return j;
}

// The targeted delta tests pin the bytecode engine explicitly: they assert
// supported() and the superset short-circuit, which the tree-engine oracle
// (CALM_ENGINE=tree CI leg) legitimately declines via fallback.
EvalOptions BytecodeOptions() {
  EvalOptions options;
  options.engine = EvalEngine::kBytecode;
  return options;
}

std::vector<Fact> InstanceFacts(const Instance& in) {
  std::vector<Fact> out;
  in.ForEachFact(
      [&](uint32_t name, const Tuple& t) { out.emplace_back(name, t); });
  return out;
}

std::string FactsToString(const std::vector<Fact>& facts) {
  std::string s;
  for (const Fact& f : facts) {
    s += FactToString(f);
    s += '\n';
  }
  return s;
}

// Runs `overlays` through one IncrementalEval (in order, reusing it — the
// epoch rollback between calls is what keeps later answers honest) and
// checks each against the from-scratch EvalParts run.
void ExpectOverlaysMatch(const PreparedProgram& prepared, const Instance& base,
                         const std::vector<Instance>& overlays,
                         const std::string& label) {
  std::unique_ptr<IncrementalEval> inc = prepared.BeginIncremental(base);
  std::vector<Fact> got;
  for (size_t k = 0; k < overlays.size(); ++k) {
    const Instance& j = overlays[k];
    const std::string ctx =
        label + " overlay " + std::to_string(k) + ": " + j.ToString() +
        "\nbase: " + base.ToString();
    Result<Instance> scratch = prepared.EvalParts({&base, &j}, nullptr);
    Result<IncrementalEval::Overlay> r =
        inc->EvalOverlay(j, &got, /*materialize=*/true);
    ASSERT_EQ(scratch.ok(), r.ok())
        << ctx << "\nscratch: "
        << (scratch.ok() ? "ok" : scratch.status().message())
        << "\nincremental: " << (r.ok() ? "ok" : r.status().message());
    if (!r.ok()) continue;
    EXPECT_EQ(FactsToString(InstanceFacts(scratch.value())),
              FactsToString(got))
        << ctx;
    if (r->superset_of_base) {
      // The claim behind the monotone short-circuit, checked against the
      // from-scratch oracle: every base output fact survives the union.
      std::vector<Fact> base_out;
      Result<Instance> base_eval = prepared.EvalParts({&base}, nullptr);
      ASSERT_TRUE(base_eval.ok()) << ctx;
      for (const Fact& f : InstanceFacts(base_eval.value())) {
        EXPECT_TRUE(scratch->Contains(f))
            << ctx << "\nsuperset_of_base claimed but " << FactToString(f)
            << " was retracted";
      }
    }
  }
}

TEST(IncrementalEvalTest, RandomStratifiedOverlaysMatchFromScratch) {
  for (unsigned seed = 0; seed < 25; ++seed) {
    std::mt19937 rng(7000 + seed);
    Result<Program> program = Parse(RandomProgram(rng));
    ASSERT_TRUE(program.ok()) << "generator bug, seed " << seed;
    Result<PreparedProgram> prepared = PreparedProgram::Prepare(*program, BytecodeOptions());
    ASSERT_TRUE(prepared.ok()) << "seed " << seed;
    Instance base = RandomBase(rng);
    std::vector<Instance> overlays;
    for (int k = 0; k < 6; ++k) overlays.push_back(RandomOverlay(rng));
    ExpectOverlaysMatch(*prepared, base, overlays,
                        "stratified seed " + std::to_string(seed));
  }
}

// The Q_TC shape: Adom seeding plus negation over a relation every overlay
// grows, so each non-trivial overlay truncates the O stratum to its
// watermark, recomputes it, and must restore the base rows before rolling
// the epoch back. Re-running an earlier overlay afterwards proves the
// restoration was byte-exact.
TEST(IncrementalEvalTest, AdomNegationRecomputeAndRollback) {
  Result<Program> program = Parse(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).\n"
      "O(x, y) :- Adom(x), Adom(y), !T(x, y).");
  ASSERT_TRUE(program.ok());
  Result<PreparedProgram> prepared = PreparedProgram::Prepare(*program, BytecodeOptions());
  ASSERT_TRUE(prepared.ok());

  Instance base;
  base.Insert(Fact("E", {V(0), V(1)}));
  base.Insert(Fact("E", {V(1), V(2)}));
  base.Insert(Fact("E", {V(3), V(3)}));

  std::vector<Instance> overlays;
  {
    Instance a;  // connects base vertices: retracts O facts
    a.Insert(Fact("E", {V(2), V(0)}));
    Instance b;  // fresh component only
    b.Insert(Fact("E", {V(100), V(101)}));
    Instance c;  // bridges base to fresh
    c.Insert(Fact("E", {V(2), V(100)}));
    c.Insert(Fact("E", {V(100), V(0)}));
    overlays = {a, b, c, a, b};  // repeats: rollback must be byte-exact
  }
  ExpectOverlaysMatch(*prepared, base, overlays, "adom-negation");

  // The same overlay, asked twice in a row from one evaluator, answers with
  // byte-identical fact streams.
  std::unique_ptr<IncrementalEval> inc = prepared->BeginIncremental(base);
  ASSERT_TRUE(inc->supported());
  std::vector<Fact> first, second;
  ASSERT_TRUE(inc->EvalOverlay(overlays[0], &first, true).ok());
  ASSERT_TRUE(inc->EvalOverlay(overlays[0], &second, true).ok());
  EXPECT_EQ(FactsToString(first), FactsToString(second));
}

TEST(IncrementalEvalTest, SupersetContractLeavesOutputUntouched) {
  Result<Program> program =
      Parse("T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).");
  ASSERT_TRUE(program.ok());
  Result<PreparedProgram> prepared = PreparedProgram::Prepare(*program, BytecodeOptions());
  ASSERT_TRUE(prepared.ok());
  Instance base;
  base.Insert(Fact("E", {V(0), V(1)}));
  std::unique_ptr<IncrementalEval> inc = prepared->BeginIncremental(base);
  ASSERT_TRUE(inc->supported());

  Instance j;
  j.Insert(Fact("E", {V(100), V(101)}));
  const std::vector<Fact> sentinel = {Fact("E", {V(9), V(9)})};
  std::vector<Fact> out = sentinel;
  Result<IncrementalEval::Overlay> r =
      inc->EvalOverlay(j, &out, /*materialize=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->superset_of_base);  // TC is monotone
  EXPECT_FALSE(r->fell_back);
  EXPECT_EQ(FactsToString(out), FactsToString(sentinel))
      << "superset short-circuit must not touch out_facts";

  // materialize=true forces the facts out even for a monotone overlay.
  r = inc->EvalOverlay(j, &out, /*materialize=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->superset_of_base);
  Result<Instance> scratch = prepared->EvalParts({&base, &j}, nullptr);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(FactsToString(InstanceFacts(scratch.value())),
            FactsToString(out));
}

TEST(IncrementalEvalTest, RetractionClearsSupersetFlag) {
  Result<Program> program =
      Parse("O(x) :- F(x), !Q(x). Q(x) :- E(x, y).");
  ASSERT_TRUE(program.ok());
  Result<PreparedProgram> prepared = PreparedProgram::Prepare(*program, BytecodeOptions());
  ASSERT_TRUE(prepared.ok());
  Instance base;
  base.Insert(Fact("F", {V(0)}));
  std::unique_ptr<IncrementalEval> inc = prepared->BeginIncremental(base);
  ASSERT_TRUE(inc->supported());

  Instance j;
  j.Insert(Fact("E", {V(0), V(7)}));  // derives Q(0), retracting O(0)
  std::vector<Fact> out;
  Result<IncrementalEval::Overlay> r =
      inc->EvalOverlay(j, &out, /*materialize=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->superset_of_base);
  EXPECT_FALSE(std::binary_search(out.begin(), out.end(),
                                  Fact("O", {V(0)})))
      << "O(0) should have been retracted in the union";
}

// Every configuration the delta machinery cannot serve must still answer —
// through the from-scratch route — and say so via supported().
TEST(IncrementalEvalTest, UnsupportedConfigurationsFallBack) {
  const std::string text = "P(x, y) :- E(x, y).";
  Result<Program> program = Parse(text);
  ASSERT_TRUE(program.ok());
  Instance base;
  base.Insert(Fact("E", {V(0), V(1)}));
  Instance j;
  j.Insert(Fact("E", {V(1), V(2)}));

  auto expect_fallback = [&](const PreparedProgram& prepared,
                             const std::string& label) {
    std::unique_ptr<IncrementalEval> inc = prepared.BeginIncremental(base);
    EXPECT_FALSE(inc->supported()) << label;
    std::vector<Fact> got;
    Result<IncrementalEval::Overlay> r =
        inc->EvalOverlay(j, &got, /*materialize=*/true);
    ASSERT_TRUE(r.ok()) << label;
    EXPECT_TRUE(r->fell_back) << label;
    Result<Instance> scratch = prepared.EvalParts({&base, &j}, nullptr);
    ASSERT_TRUE(scratch.ok()) << label;
    EXPECT_EQ(FactsToString(InstanceFacts(scratch.value())),
              FactsToString(got))
        << label;
  };

  {
    EvalOptions tree;
    tree.engine = EvalEngine::kTree;
    Result<PreparedProgram> prepared = PreparedProgram::Prepare(*program, tree);
    ASSERT_TRUE(prepared.ok());
    expect_fallback(*prepared, "tree engine");
  }
  {
    EvalOptions naive;
    naive.semi_naive = false;
    Result<PreparedProgram> prepared =
        PreparedProgram::Prepare(*program, naive);
    ASSERT_TRUE(prepared.ok());
    expect_fallback(*prepared, "naive iteration");
  }
  {
    Result<Program> gamma = Parse("P(x) :- F(x), !P(x).");
    ASSERT_TRUE(gamma.ok());
    Result<PreparedProgram> prepared =
        PreparedProgram::PrepareFixedNegation(*gamma);
    ASSERT_TRUE(prepared.ok());
    std::unique_ptr<IncrementalEval> inc = prepared->BeginIncremental(base);
    EXPECT_FALSE(inc->supported()) << "fixed negation";
  }
  {
    Result<Program> invent = Parse("P(*, x) :- E(x, y).");
    ASSERT_TRUE(invent.ok());
    Result<PreparedProgram> prepared = PreparedProgram::Prepare(
        *invent, EvalOptions{}, /*allow_invention=*/true);
    ASSERT_TRUE(prepared.ok());
    std::unique_ptr<IncrementalEval> inc = prepared->BeginIncremental(base);
    EXPECT_FALSE(inc->supported()) << "ilog invention";
  }
}

// The storage half of the tentpole, probed through the public Database API:
// nested epochs roll back to byte-identical instances, including stores and
// dictionary entries created mid-epoch.
TEST(IncrementalEvalTest, NestedEpochRollbackRestoresDatabase) {
  const uint32_t e = InternName("E");
  const uint32_t f = InternName("F");
  const uint32_t g = InternName("G");
  Database db;
  db.Insert(e, {V(0), V(1)});
  db.Insert(e, {V(1), V(2)});
  db.Insert(f, {V(3)});
  const std::string base = db.ToInstance().ToString();

  db.BeginEpoch();
  db.Insert(e, {V(4), V(5)});     // new rows, new dict values
  db.Insert(g, {V(0), V(1), V(2)});  // store created mid-epoch
  const std::string outer = db.ToInstance().ToString();

  db.BeginEpoch();
  db.Insert(f, {V(6)});
  db.Insert(e, {V(0), V(1)});  // duplicate: must stay after inner rollback
  EXPECT_EQ(db.EpochDepth(), 2u);
  db.RollbackEpoch();
  EXPECT_EQ(db.ToInstance().ToString(), outer);

  db.RollbackEpoch();
  EXPECT_EQ(db.EpochDepth(), 0u);
  EXPECT_EQ(db.ToInstance().ToString(), base);

  // Regression: a ranks cache built during a rolled-back epoch must not
  // survive a regrowth to the same dictionary size with different values —
  // ToInstance would sort rows by the dead epoch's value order.
  db.BeginEpoch();
  db.Insert(e, {V(200), V(201)});
  (void)db.ToInstance();  // builds the ranks cache above the base prefix
  db.RollbackEpoch();
  db.Insert(e, {V(201), V(0)});  // interned in descending value order, so a
  db.Insert(e, {V(200), V(0)});  // stale cache would emit 201 before 200
  Instance want;
  want.Insert(Fact("E", {V(0), V(1)}));
  want.Insert(Fact("E", {V(1), V(2)}));
  want.Insert(Fact("E", {V(200), V(0)}));
  want.Insert(Fact("E", {V(201), V(0)}));
  want.Insert(Fact("F", {V(3)}));
  EXPECT_EQ(db.ToInstance().ToString(), want.ToString());
}

// UnionEvaluator parity at the Query layer: the engine-specific evaluators
// (closure matrix for TC/Q_TC, incremental fixpoint for DatalogQuery) must
// report the byte-identical first-retracted fact the overlay route reports,
// pair by pair.
TEST(UnionEvaluatorTest, EngineEvaluatorsMatchOverlayRoute) {
  std::vector<std::unique_ptr<Query>> queries;
  queries.push_back(queries::MakeTransitiveClosure());
  queries.push_back(queries::MakeComplementTransitiveClosure());

  for (const auto& q : queries) {
    for (unsigned seed = 0; seed < 20; ++seed) {
      std::mt19937 rng(8000 + seed);
      Instance i;
      const size_t nedges = Rand(rng, 6);
      for (size_t k = 0; k < nedges; ++k) {
        i.Insert(Fact("E", {V(Rand(rng, 4)), V(Rand(rng, 4))}));
      }
      std::vector<Fact> base;
      ASSERT_TRUE(q->EvalFacts(i, &base).ok());
      std::unique_ptr<UnionEvaluator> engine = q->MakeUnionEvaluator(i);
      std::unique_ptr<UnionEvaluator> overlay =
          MakeOverlayUnionEvaluator(*q, i);
      for (int pair = 0; pair < 8; ++pair) {
        Instance j;
        const size_t jedges = Rand(rng, 3);
        for (size_t k = 0; k < jedges; ++k) {
          // Old, fresh, and bridging endpoints: exercises the fresh-component
          // shortcut, the remap/saturate path, and real retractions (a new
          // edge between base vertices can shrink Q_TC).
          auto val = [&]() {
            return Chance(rng, 0.5) ? V(Rand(rng, 4)) : V(200 + Rand(rng, 2));
          };
          j.Insert(Fact("E", {val(), val()}));
        }
        Result<std::optional<Fact>> a = engine->FirstRetracted(j, base);
        Result<std::optional<Fact>> b = overlay->FirstRetracted(j, base);
        ASSERT_TRUE(a.ok() && b.ok()) << q->name() << " seed " << seed;
        ASSERT_EQ(a->has_value(), b->has_value())
            << q->name() << " seed " << seed << "\ni: " << i.ToString()
            << "\nj: " << j.ToString();
        if (a->has_value()) {
          EXPECT_EQ(FactToString(**a), FactToString(**b))
              << q->name() << " seed " << seed << "\ni: " << i.ToString()
              << "\nj: " << j.ToString();
        }
      }
    }
  }
}

// Restores the process-wide incremental mode on scope exit, so a failing
// assertion cannot leak a pinned mode into later tests.
struct ModeGuard {
  ~ModeGuard() { SetDefaultIncrementalMode(IncrementalMode::kDefault); }
};

// Checker verdicts and counterexample witnesses are byte-identical with the
// incremental path on and off, at every thread count — the whole point of
// the delta machinery is being invisible to the sweeps' results.
TEST(IncrementalCheckerTest, VerdictsIdenticalOnVsOffAcrossThreads) {
  ModeGuard guard;
  const struct {
    const char* name;
    const char* text;  // nullptr = native Q_TC
  } kSpecs[] = {
      {"qtc-datalog",
       "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).\n"
       "O(x, y) :- Adom(x), Adom(y), !T(x, y). .output O"},
      {"guarded",
       "O(x) :- F(x), !Q(x). Q(x) :- E(x, y), E(y, x). .output O"},
      {"qtc-native", nullptr},
  };
  monotonicity::ExhaustiveOptions options;
  options.domain_size = 2;
  options.max_facts_i = 2;
  options.fresh_values = 1;
  options.max_facts_j = 2;

  for (const auto& spec : kSpecs) {
    for (auto cls : {monotonicity::MonotonicityClass::kMonotone,
                     monotonicity::MonotonicityClass::kDomainDisjoint}) {
      // verdicts[mode][thread-count index]
      std::vector<std::string> verdicts[2];
      for (int mode = 0; mode < 2; ++mode) {
        SetDefaultIncrementalMode(mode == 0 ? IncrementalMode::kOn
                                            : IncrementalMode::kOff);
        // Queries are built inside the mode loop: DatalogQuery resolves the
        // mode at Prepare time, the native factories at evaluator-creation
        // time.
        std::unique_ptr<Query> native;
        std::optional<DatalogQuery> dq;
        const Query* query = nullptr;
        if (spec.text == nullptr) {
          native = queries::MakeComplementTransitiveClosure();
          query = native.get();
        } else {
          dq = DatalogQuery::FromTextOrDie(spec.text, spec.name);
          query = &*dq;
        }
        for (size_t threads : {1u, 2u, 8u}) {
          options.threads = threads;
          auto r = monotonicity::FindViolation(*query, cls, options);
          ASSERT_TRUE(r.ok()) << spec.name;
          verdicts[mode].push_back(
              r->has_value() ? (*r)->ToString() : "<no violation>");
        }
      }
      for (size_t t = 0; t < verdicts[0].size(); ++t) {
        EXPECT_EQ(verdicts[0][t], verdicts[1][t])
            << spec.name << " class " << monotonicity::MonotonicityClassName(cls)
            << " thread slot " << t
            << ": incremental on and off disagree";
      }
      // Thread counts must not change the verdict either.
      for (int mode = 0; mode < 2; ++mode) {
        for (size_t t = 1; t < verdicts[mode].size(); ++t) {
          EXPECT_EQ(verdicts[mode][0], verdicts[mode][t]) << spec.name;
        }
      }
    }
  }
}

}  // namespace
}  // namespace calm::datalog
