#include <gtest/gtest.h>

#include "datalog/ilog.h"
#include "datalog/parser.h"
#include "workload/graph_gen.h"

namespace calm::datalog {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

TEST(InventionRelationsTest, DetectsInventingHeads) {
  Program p = ParseOrDie(
      "N(*, x) :- E(x, y).\n"
      "O(x) :- N(k, x).\n");
  Result<std::set<uint32_t>> inv = InventionRelations(p);
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->size(), 1u);
  EXPECT_TRUE(inv->count(InternName("N")) > 0);
}

TEST(InventionRelationsTest, RejectsMixedRules) {
  Program p = ParseOrDie(
      "N(*, x) :- E(x, y).\n"
      "N(x, y) :- E(x, y).\n");
  EXPECT_FALSE(InventionRelations(p).ok());
}

TEST(UnsafePositionsTest, InventionPositionIsUnsafe) {
  Program p = ParseOrDie("N(*, x) :- E(x, y).");
  std::set<uint32_t> inv = InventionRelations(p).value();
  auto unsafe = UnsafePositions(p, inv);
  EXPECT_TRUE(unsafe.count({InternName("N"), 1}) > 0);
  EXPECT_FALSE(unsafe.count({InternName("N"), 2}) > 0);
}

TEST(UnsafePositionsTest, PropagatesThroughRules) {
  Program p = ParseOrDie(
      "N(*, x) :- E(x, y).\n"
      "Leak(k) :- N(k, x).\n"      // copies the unsafe position 1 of N
      "Fine(x) :- N(k, x).\n");    // copies the safe position 2
  std::set<uint32_t> inv = InventionRelations(p).value();
  auto unsafe = UnsafePositions(p, inv);
  EXPECT_TRUE(unsafe.count({InternName("Leak"), 1}) > 0);
  EXPECT_FALSE(unsafe.count({InternName("Fine"), 1}) > 0);
}

TEST(WeakSafetyTest, OutputDecidesSafety) {
  Program leaky = ParseOrDie(
      ".output Leak\n"
      "N(*, x) :- E(x, y).\n"
      "Leak(k) :- N(k, x).\n");
  Program safe = ParseOrDie(
      ".output Fine\n"
      "N(*, x) :- E(x, y).\n"
      "Fine(x) :- N(k, x).\n");
  EXPECT_FALSE(IsWeaklySafe(leaky, InventionRelations(leaky).value()));
  EXPECT_TRUE(IsWeaklySafe(safe, InventionRelations(safe).value()));
}

TEST(EvaluateIlogTest, SkolemHashConsing) {
  // One invented value per distinct x (f_N(x)), not per rule firing.
  Program p = ParseOrDie("N(*, x) :- E(x, y).");
  Instance in{Fact("E", {V(1), V(2)}), Fact("E", {V(1), V(3)}),
              Fact("E", {V(2), V(3)})};
  size_t invented = 0;
  Result<Instance> out = EvaluateIlog(p, in, {}, nullptr, &invented);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(invented, 2u);  // f_N(1), f_N(2)
  EXPECT_EQ(out->TuplesOf(InternName("N")).size(), 2u);
  for (const Tuple& t : out->TuplesOf(InternName("N"))) {
    EXPECT_TRUE(t[0].is_invented());
    EXPECT_FALSE(t[1].is_invented());
  }
}

TEST(EvaluateIlogTest, DivergentProgramHitsLimit) {
  // Feeding invented values back into invention diverges; the paper calls
  // the output "undefined", we return ResourceExhausted.
  Program p = ParseOrDie(
      "N(*, x) :- S(x).\n"
      "N(*, k) :- N(k, x).\n");
  EvalOptions opts;
  opts.max_total_facts = 1000;
  Result<Instance> out = EvaluateIlog(p, Instance{Fact("S", {V(1)})}, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvaluateIlogTest, InventedValuesJoinCorrectly) {
  // Group edges by source via an invented group id, then recover pairs of
  // edges sharing a source — exercises joins on invented values.
  Program p = ParseOrDie(
      ".output O\n"
      "G(*, x) :- E(x, y).\n"
      "Member(k, y) :- G(k, x), E(x, y).\n"
      "O(y, z) :- Member(k, y), Member(k, z), y != z.\n");
  Instance in{Fact("E", {V(1), V(2)}), Fact("E", {V(1), V(3)}),
              Fact("E", {V(4), V(5)})};
  Result<Instance> out = EvaluateIlog(p, in);
  ASSERT_TRUE(out.ok()) << out.status();
  const TupleSet& o = out->TuplesOf(InternName("O"));
  EXPECT_EQ(o.size(), 2u);  // (2,3) and (3,2); nothing for source 4
  EXPECT_TRUE(o.count({V(2), V(3)}) > 0);
}

TEST(IlogQueryTest, CreateRejectsUnsafePrograms) {
  Result<Program> leaky = Parse(
      ".output Leak\n"
      "N(*, x) :- E(x, y).\n"
      "Leak(k) :- N(k, x).\n");
  ASSERT_TRUE(leaky.ok());
  EXPECT_FALSE(IlogQuery::Create(leaky.value(), "leaky").ok());
}

TEST(IlogQueryTest, EvalProducesInventionFreeOutput) {
  IlogQuery q = IlogQuery::FromTextOrDie(
      ".output O\n"
      "G(*, x) :- E(x, y).\n"
      "O(x) :- G(k, x).\n",
      "sources");
  Result<Instance> out = q.Eval(workload::Path(3));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);  // sources 0 and 1
  out->ForEachFact([&](uint32_t, const Tuple& t) {
    for (Value v : t) EXPECT_FALSE(v.is_invented());
  });
}

TEST(IlogQueryTest, FragmentClassificationAppliesToIlog) {
  // A semi-connected wILOG¬ program (Theorem 5.4's fragment): connected
  // strata below, arbitrary last stratum.
  IlogQuery q = IlogQuery::FromTextOrDie(
      ".output O\n"
      "G(*, x) :- E(x, y).\n"
      "Mark(x) :- G(k, x).\n"
      "O(x) :- Adom(x), !Mark(x).\n",
      "non-sources");
  EXPECT_TRUE(q.fragment().semi_connected);
  Result<Instance> out = q.Eval(workload::Path(3));
  ASSERT_TRUE(out.ok());
  // Path 0->1->2: non-sources = {2}.
  EXPECT_EQ(out->size(), 1u);
  EXPECT_TRUE(out->Contains(Fact("O", {V(2)})));
}

TEST(IlogQueryTest, SPwILOGStaysInMdistinctOnWitness) {
  // An SP-wILOG program (negation over edb only) — outputs must never be
  // retracted by domain-distinct additions on these witnesses.
  IlogQuery q = IlogQuery::FromTextOrDie(
      ".output O\n"
      "G(*, x) :- E(x, y), !Blocked(x).\n"
      "O(x) :- G(k, x).\n",
      "unblocked-sources");
  Instance i{Fact("E", {V(1), V(2)})};
  Instance j{Fact("E", {V(2), V(9)}), Fact("Blocked", {V(9)})};
  Result<Instance> out_i = q.Eval(i);
  Result<Instance> out_ij = q.Eval(Instance::Union(i, j));
  ASSERT_TRUE(out_i.ok());
  ASSERT_TRUE(out_ij.ok());
  EXPECT_TRUE(out_i->IsSubsetOf(out_ij.value()));
}

}  // namespace
}  // namespace calm::datalog
