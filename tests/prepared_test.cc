// Pins the compile-once pipeline to the one-shot entry points: for every
// semantics (stratified, naive, ILOG invention, fixed-negation Gamma,
// well-founded) a PreparedProgram evaluated many times must return exactly
// what the corresponding single-call API returns, with identical EvalStats.

#include "datalog/prepared.h"

#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/program.h"
#include "datalog/wellfounded.h"
#include "workload/graph_gen.h"

namespace calm::datalog {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

bool StatsEqual(const EvalStats& a, const EvalStats& b) {
  return a.derived_facts == b.derived_facts &&
         a.fixpoint_rounds == b.fixpoint_rounds &&
         a.rule_applications == b.rule_applications;
}

TEST(PreparedProgramTest, MatchesOneShotStratified) {
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).\n"
      "O(x, y) :- Adom(x), Adom(y), !T(x, y). .output O");
  Result<PreparedProgram> prepared = PreparedProgram::Prepare(p);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  for (uint64_t seed = 0; seed < 6; ++seed) {
    Instance in = workload::RandomGraph(8, 0.25, seed);
    EvalStats one_shot_stats;
    Result<Instance> one_shot = Evaluate(p, in, {}, &one_shot_stats);
    ASSERT_TRUE(one_shot.ok()) << one_shot.status();

    EvalStats prepared_stats;
    Result<Instance> out = prepared->Eval(in, &prepared_stats);
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_EQ(*out, *one_shot) << "seed " << seed;
    EXPECT_TRUE(StatsEqual(prepared_stats, one_shot_stats)) << "seed " << seed;
  }
}

TEST(PreparedProgramTest, MatchesOneShotNaiveMode) {
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T");
  EvalOptions naive;
  naive.semi_naive = false;
  Result<PreparedProgram> prepared = PreparedProgram::Prepare(p, naive);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  Instance in = workload::RandomGraph(10, 0.2, /*seed=*/3);
  EvalStats one_shot_stats;
  Result<Instance> one_shot = Evaluate(p, in, naive, &one_shot_stats);
  ASSERT_TRUE(one_shot.ok());
  EvalStats prepared_stats;
  Result<Instance> out = prepared->Eval(in, &prepared_stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, *one_shot);
  EXPECT_TRUE(StatsEqual(prepared_stats, one_shot_stats));
}

TEST(PreparedProgramTest, MatchesOneShotIlogInvention) {
  Program p = ParseOrDie("N(*, x) :- S(x). O(v, x) :- N(v, x). .output O");
  Result<PreparedProgram> prepared =
      PreparedProgram::Prepare(p, {}, /*allow_invention=*/true);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  Instance in{Fact("S", {V(1)}), Fact("S", {V(2)})};
  EvalStats one_shot_stats;
  size_t one_shot_invented = 0;
  Result<Instance> one_shot =
      EvaluateIlog(p, in, {}, &one_shot_stats, &one_shot_invented);
  ASSERT_TRUE(one_shot.ok()) << one_shot.status();

  EvalStats prepared_stats;
  size_t invented = 0;
  Result<Instance> out = prepared->Eval(in, &prepared_stats, &invented);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, *one_shot);
  EXPECT_EQ(invented, one_shot_invented);
  EXPECT_TRUE(StatsEqual(prepared_stats, one_shot_stats));
}

TEST(PreparedProgramTest, MatchesOneShotFixedNegation) {
  Program p = ParseOrDie("Win(x) :- Move(x, y), !Win(y).");
  Result<PreparedProgram> prepared = PreparedProgram::PrepareFixedNegation(p);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  Instance in{Fact("Move", {V(1), V(2)}), Fact("Move", {V(2), V(3)})};
  Instance neg{Fact("Win", {V(2)})};
  EvalStats one_shot_stats;
  Result<Instance> one_shot =
      EvaluateWithFixedNegation(p, in, neg, {}, &one_shot_stats);
  ASSERT_TRUE(one_shot.ok()) << one_shot.status();

  EvalStats prepared_stats;
  Result<Instance> out = prepared->EvalFixedNegation(in, neg, &prepared_stats);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, *one_shot);
  EXPECT_TRUE(StatsEqual(prepared_stats, one_shot_stats));
}

TEST(PreparedProgramTest, MatchesOneShotWellFounded) {
  Program p = ParseOrDie("Win(x) :- Move(x, y), !Win(y).");
  Result<PreparedProgram> prepared = PreparedProgram::PrepareFixedNegation(p);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  for (uint64_t seed = 0; seed < 4; ++seed) {
    Instance graph = workload::RandomGraph(7, 0.3, seed);
    Instance in;
    for (const Tuple& t : graph.TuplesOf(InternName("E"))) {
      in.Insert(Fact("Move", t));
    }
    Result<WellFoundedModel> one_shot = EvaluateWellFounded(p, in);
    ASSERT_TRUE(one_shot.ok()) << one_shot.status();
    Result<WellFoundedModel> reused = EvaluateWellFounded(*prepared, {&in});
    ASSERT_TRUE(reused.ok()) << reused.status();
    EXPECT_EQ(reused->definitely, one_shot->definitely) << "seed " << seed;
    EXPECT_EQ(reused->possibly, one_shot->possibly) << "seed " << seed;
  }
}

TEST(PreparedProgramTest, RepeatedEvalIsStable) {
  // The thread-local scratch must not leak state between runs — neither
  // across different inputs nor across repeated runs on one input.
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T");
  Result<PreparedProgram> prepared = PreparedProgram::Prepare(p);
  ASSERT_TRUE(prepared.ok());

  Instance big = workload::RandomGraph(9, 0.4, /*seed=*/1);
  Instance small = workload::Path(3);
  Instance big_expected = *prepared->Eval(big);
  Instance small_expected = *prepared->Eval(small);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(*prepared->Eval(big), big_expected) << "round " << round;
    // A smaller input right after a bigger one must not see stale facts.
    EXPECT_EQ(*prepared->Eval(small), small_expected) << "round " << round;
    EXPECT_TRUE(prepared->Eval(Instance{})->empty()) << "round " << round;
  }
}

TEST(PreparedProgramTest, EvalPartsEqualsEvalOnUnion) {
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T");
  Result<PreparedProgram> prepared = PreparedProgram::Prepare(p);
  ASSERT_TRUE(prepared.ok());

  Instance a = workload::RandomGraph(6, 0.3, /*seed=*/11);
  Instance b = workload::RandomGraph(6, 0.3, /*seed=*/12);
  Result<Instance> parts = prepared->EvalParts({&a, &b}, nullptr);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(*parts, *prepared->Eval(Instance::Union(a, b)));
}

TEST(DatalogQueryTest, EvalUnionEqualsEvalOfUnion) {
  DatalogQuery q = DatalogQuery::FromTextOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T", "tc");
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Instance a = workload::RandomGraph(6, 0.3, seed);
    Instance b = workload::RandomGraph(6, 0.3, seed + 100);
    Result<Instance> direct = q.EvalUnion(a, b);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(*direct, *q.Eval(Instance::Union(a, b))) << "seed " << seed;
  }
}

}  // namespace
}  // namespace calm::datalog
