// Edge cases and hardening for the Datalog engine: parser corner cases,
// unusual-but-legal rules, stratifier shapes, Adom seeding, and the
// adversarial-delay scheduler on transducer networks.

#include <gtest/gtest.h>

#include <memory>

#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/program.h"
#include "queries/graph_queries.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

namespace calm::datalog {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

Instance EvalOrDie(const Program& p, const Instance& in) {
  Result<Instance> r = Evaluate(p, in);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r.value() : Instance{};
}

// ---------------------------------------------------------------------------
// Parser corner cases
// ---------------------------------------------------------------------------

TEST(ParserEdgeTest, WhitespaceAndCommentsEverywhere) {
  Result<Program> p = Parse(
      "  %% leading comment\n"
      "\tT( x ,y ):-E(x,\n y).   // trailing\n"
      "%\n");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->rules.size(), 1u);
}

TEST(ParserEdgeTest, ArrowVariants) {
  EXPECT_TRUE(Parse("T(x) <- E(x, x).").ok());
  EXPECT_TRUE(Parse("T(x) :- E(x, x).").ok());
}

TEST(ParserEdgeTest, NotKeywordNegation) {
  Result<Program> p = Parse("T(x) :- E(x, x), not S(x).");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->rules[0].neg.size(), 1u);
}

TEST(ParserEdgeTest, EmptyProgramIsValidText) {
  Result<Program> p = Parse("% nothing here\n");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->empty());
}

TEST(ParserEdgeTest, ConstantOnlyIneq) {
  // 1 != 2 is always true; 1 != 1 never. Both are syntactically legal.
  Program p = ParseOrDie("O(x) :- S(x), 1 != 2. .output O");
  Instance out = EvalOrDie(p, Instance{Fact("S", {V(5)})});
  EXPECT_TRUE(out.Contains(Fact("O", {V(5)})));
  Program q = ParseOrDie("O(x) :- S(x), 1 != 1. .output O");
  EXPECT_TRUE(EvalOrDie(q, Instance{Fact("S", {V(5)})})
                  .TuplesOf(InternName("O"))
                  .empty());
}

TEST(ParserEdgeTest, UnterminatedStringRejected) {
  EXPECT_FALSE(Parse("O(x) :- S(x, \"oops).").ok());
}

TEST(ParserEdgeTest, LineNumbersInErrors) {
  Result<Program> p = Parse("T(x) :- E(x, x).\n\n@@@");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Evaluator corner cases
// ---------------------------------------------------------------------------

TEST(EvaluatorEdgeTest, ConstantHead) {
  // A head with only constants: derived once any body match exists.
  Program p = ParseOrDie("O(7, 8) :- E(x, y). .output O");
  Instance out = EvalOrDie(p, workload::Path(2));
  EXPECT_TRUE(out.Contains(Fact("O", {V(7), V(8)})));
  EXPECT_TRUE(EvalOrDie(p, Instance{}).TuplesOf(InternName("O")).empty());
}

TEST(EvaluatorEdgeTest, DuplicateRulesAreHarmless) {
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, y) :- E(x, y). .output T");
  EXPECT_EQ(EvalOrDie(p, workload::Path(3)).TuplesOf(InternName("T")).size(),
            2u);
}

TEST(EvaluatorEdgeTest, SymbolConstantsJoinWithData) {
  Program p = ParseOrDie("O(x) :- Color(x, \"red\"). .output O");
  Instance in{Fact("Color", {V(1), Sym("red")}),
              Fact("Color", {V(2), Sym("blue")})};
  Instance out = EvalOrDie(p, in);
  EXPECT_EQ(out.TuplesOf(InternName("O")).size(), 1u);
  EXPECT_TRUE(out.Contains(Fact("O", {V(1)})));
}

TEST(EvaluatorEdgeTest, IdbFactsInInputSeedTheRelation) {
  // Facts over an idb relation supplied in the input act as seeds (edb
  // part of the idb relation) — standard Datalog behavior.
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T");
  Instance in = workload::Path(2);
  in.Insert(Fact("T", {V(50), V(0)}));  // seed: reaches the path
  Instance out = EvalOrDie(p, in);
  EXPECT_TRUE(out.Contains(Fact("T", {V(50), V(1)})));
}

TEST(EvaluatorEdgeTest, AdomSeededOnlyFromRealEdb) {
  Program p = ParseOrDie("O(x) :- Adom(x). .output O");
  Instance in{Fact("E", {V(1), V(2)})};
  // E is not part of sch(P) here (the program never mentions it), so Adom
  // stays empty: the program's input schema is just {Adom}, pruned.
  Instance out = EvalOrDie(p, in);
  EXPECT_TRUE(out.TuplesOf(InternName("O")).empty());
  // When the program also reads E, Adom covers E's values.
  Program q = ParseOrDie("U(x, y) :- E(x, y). O(x) :- Adom(x). .output O");
  Instance out2 = EvalOrDie(q, in);
  EXPECT_EQ(out2.TuplesOf(InternName("O")).size(), 2u);
}

TEST(EvaluatorEdgeTest, DeepStrataChain) {
  // A 5-stratum alternation of complements.
  Program p = ParseOrDie(
      "A(x) :- Adom(x), !Z(x).\n"
      "B(x) :- Adom(x), !A(x).\n"
      "C(x) :- Adom(x), !B(x).\n"
      "D(x) :- Adom(x), !C(x).\n"
      "O(x) :- Adom(x), !D(x).\n"
      "Z(x) :- S(x).\n"
      ".output O");
  // Values: S = {1}; Z={1}; A={2}; B={1}; C={2}; D={1}; O={2}.
  Instance in{Fact("S", {V(1)}), Fact("S2", {V(2)})};
  // S2 unused by the program; add 2 via another S fact instead.
  Instance input{Fact("S", {V(1)}), Fact("S", {V(2)})};
  // With S={1,2}: Z={1,2}, A={}, B={1,2}, C={}, D={1,2}, O={}.
  EXPECT_TRUE(EvalOrDie(p, input).TuplesOf(InternName("O")).empty());
  (void)in;
}

TEST(EvaluatorEdgeTest, LargeArityRelations) {
  Program p = ParseOrDie(
      "O(a, b, c, d, e) :- R(a, b, c, d, e), a != e. .output O");
  Instance in{Fact("R", {V(1), V(2), V(3), V(4), V(5)}),
              Fact("R", {V(1), V(2), V(3), V(4), V(1)})};
  EXPECT_EQ(EvalOrDie(p, in).TuplesOf(InternName("O")).size(), 1u);
}

TEST(EvaluatorEdgeTest, SelfJoinSameRelationThreeTimes) {
  Program p = ParseOrDie(
      "O(x, w) :- E(x, y), E(y, z), E(z, w). .output O");
  Instance out = EvalOrDie(p, workload::Cycle(4));
  EXPECT_EQ(out.TuplesOf(InternName("O")).size(), 4u);  // 3-hops on a 4-cycle
}

// ---------------------------------------------------------------------------
// Adversarial-delay schedule on transducer networks
// ---------------------------------------------------------------------------

TEST(AdversarialScheduleTest, StrategiesSurviveMaximalDelays) {
  auto win = queries::MakeWinMove();
  auto t = transducer::MakeDomainRequestTransducer(win.get());
  Instance graph = workload::RandomGraph(5, 0.35, 4);
  Instance game;
  for (const Tuple& tu : graph.TuplesOf(InternName("E"))) {
    game.Insert(Fact("Move", tu));
  }
  Instance expected = win->Eval(game).value();

  transducer::Network nodes{V(900), V(901), V(902)};
  transducer::HashDomainGuidedPolicy policy(nodes);
  transducer::TransducerNetwork network(
      nodes, t.get(), &policy, transducer::ModelOptions::PolicyAware());
  ASSERT_TRUE(network.Initialize(game).ok());
  transducer::RunOptions ro;
  ro.scheduler = transducer::RunOptions::SchedulerKind::kAdversarialDelay;
  ro.max_delay = 24;
  Result<transducer::RunResult> r = transducer::RunToQuiescence(network, ro);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->quiesced);
  EXPECT_EQ(r->output, expected);
}

TEST(AdversarialScheduleTest, DelaysStretchTheRun) {
  auto tc = queries::MakeTransitiveClosure();
  auto t = transducer::MakeBroadcastTransducer(tc.get());
  transducer::Network nodes{V(900), V(901)};
  transducer::HashPolicy policy(nodes);
  Instance input = workload::Path(5);

  size_t transitions[2] = {0, 0};
  for (int adversarial = 0; adversarial < 2; ++adversarial) {
    transducer::TransducerNetwork network(
        nodes, t.get(), &policy, transducer::ModelOptions::Original());
    ASSERT_TRUE(network.Initialize(input).ok());
    transducer::RunOptions ro;
    ro.scheduler =
        adversarial
            ? transducer::RunOptions::SchedulerKind::kAdversarialDelay
            : transducer::RunOptions::SchedulerKind::kRoundRobin;
    ro.max_delay = 20;
    Result<transducer::RunResult> r =
        transducer::RunToQuiescence(network, ro);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->quiesced);
    EXPECT_EQ(r->output, tc->Eval(input).value());
    transitions[adversarial] = r->stats.transitions;
  }
  EXPECT_GT(transitions[1], transitions[0]);
}

}  // namespace
}  // namespace calm::datalog
