#include <gtest/gtest.h>

#include <set>

#include "net/message_buffer.h"
#include "net/scheduler.h"

namespace calm::net {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }
Fact F(uint64_t a) { return Fact("M", {V(a)}); }

TEST(MessageBufferTest, AddAndTakeCollapses) {
  MessageBuffer buf;
  buf.Add(F(1), 0);
  buf.Add(F(1), 1);  // duplicate in flight
  buf.Add(F(2), 2);
  EXPECT_EQ(buf.size(), 3u);
  Instance delivered = buf.TakeCollapsed({0, 1});
  EXPECT_EQ(delivered.size(), 1u);  // multiset collapsed to a set
  EXPECT_TRUE(delivered.Contains(F(1)));
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.entries()[0].fact, F(2));
}

TEST(MessageBufferTest, TakeSubsetPreservesOthers) {
  MessageBuffer buf;
  for (uint64_t i = 0; i < 5; ++i) buf.Add(F(i), i);
  Instance delivered = buf.TakeCollapsed({1, 3});
  EXPECT_EQ(delivered.size(), 2u);
  EXPECT_EQ(buf.size(), 3u);
  // Remaining entries are 0, 2, 4.
  std::set<uint64_t> left;
  for (const auto& e : buf.entries()) left.insert(e.fact.args[0].payload());
  EXPECT_EQ(left, (std::set<uint64_t>{0, 2, 4}));
}

TEST(MessageBufferTest, AllIndicesAndAging) {
  MessageBuffer buf;
  buf.Add(F(1), 5);
  buf.Add(F(2), 10);
  EXPECT_EQ(buf.AllIndices().size(), 2u);
  EXPECT_EQ(buf.IndicesOlderThan(5).size(), 1u);
  EXPECT_EQ(buf.IndicesOlderThan(10).size(), 2u);
  EXPECT_EQ(buf.IndicesOlderThan(4).size(), 0u);
}

TEST(MessageBufferTest, InsertAtPositionsAndClamps) {
  MessageBuffer buf;
  buf.Add(F(1), 0);
  buf.Add(F(2), 1);
  buf.InsertAt(0, F(3), 2);  // front
  buf.InsertAt(2, F(4), 3);  // middle
  buf.InsertAt(99, F(5), 4);  // past the end: clamped to back
  std::vector<uint64_t> order;
  for (const auto& e : buf.entries()) order.push_back(e.fact.args[0].payload());
  EXPECT_EQ(order, (std::vector<uint64_t>{3, 1, 4, 2, 5}));
  // The true enqueue tick survives reordering (fairness bookkeeping).
  EXPECT_EQ(buf.entries()[0].enqueued_at, 2u);
  EXPECT_EQ(buf.IndicesOlderThan(1).size(), 2u);  // F(1)@0 and F(2)@1 only
}

TEST(RunStatsTest, RendersEveryCounter) {
  RunStats stats;
  stats.transitions = 12;
  stats.heartbeats = 3;
  stats.messages_sent = 8;
  stats.messages_delivered = 7;
  stats.output_facts = 4;
  stats.output_complete_at = 9;
  std::string s = RunStatsToString(stats);
  EXPECT_NE(s.find("transitions=12"), std::string::npos);
  EXPECT_NE(s.find("heartbeats=3"), std::string::npos);
  EXPECT_NE(s.find("sent=8"), std::string::npos);
  EXPECT_NE(s.find("delivered=7"), std::string::npos);
  EXPECT_NE(s.find("output_facts=4"), std::string::npos);
}

TEST(RoundRobinSchedulerTest, CyclesAndDeliversAll) {
  std::vector<MessageBuffer> buffers(3);
  buffers[1].Add(F(7), 0);
  RoundRobinScheduler sched(3);
  std::vector<size_t> order;
  for (uint64_t t = 0; t < 6; ++t) {
    Scheduler::Choice c = sched.Next(buffers, t);
    order.push_back(c.node_index);
    if (c.node_index == 1) {
      EXPECT_EQ(c.deliveries.size(), 1u);
    }
  }
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(RandomSchedulerTest, EveryNodeActivatedWithinBound) {
  // Fairness condition (i): no node is starved.
  std::vector<MessageBuffer> buffers(4);
  RandomScheduler sched(4, /*seed=*/42);
  std::vector<uint64_t> last(4, 0);
  for (uint64_t t = 1; t <= 500; ++t) {
    Scheduler::Choice c = sched.Next(buffers, t);
    last[c.node_index] = t;
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_LE(t - last[i], 4 * 4 + 5) << "node " << i << " starved";
    }
  }
}

TEST(RandomSchedulerTest, OldMessagesForceDelivered) {
  // Fairness condition (ii): no message is postponed past max_delay.
  std::vector<MessageBuffer> buffers(1);
  RandomScheduler sched(1, /*seed=*/7, /*deliver_prob=*/0.0, /*max_delay=*/8);
  buffers[0].Add(F(1), 0);
  bool delivered = false;
  for (uint64_t t = 1; t <= 10 && !delivered; ++t) {
    Scheduler::Choice c = sched.Next(buffers, t);
    if (!c.deliveries.empty()) {
      delivered = true;
      EXPECT_LE(t, 9u);
    }
  }
  EXPECT_TRUE(delivered);
}

TEST(AdversarialDelaySchedulerTest, DelaysButNeverPastBound) {
  // Fairness for the adversarial scheduler: a message sits exactly until it
  // ages past max_delay, then is force-delivered on its node's turn.
  std::vector<MessageBuffer> buffers(2);
  AdversarialDelayScheduler sched(2, /*max_delay=*/6);
  buffers[0].Add(F(1), 1);
  bool delivered = false;
  for (uint64_t t = 1; t <= 20 && !delivered; ++t) {
    Scheduler::Choice c = sched.Next(buffers, t);
    if (c.node_index == 0 && !c.deliveries.empty()) {
      delivered = true;
      EXPECT_GT(t, 6u);       // withheld while fresh
      EXPECT_LE(t, 1 + 6 + 2);  // but not past the bound (+ rotation slack)
      buffers[0].TakeCollapsed(c.deliveries);
    }
  }
  EXPECT_TRUE(delivered);
}

TEST(RandomSchedulerTest, DeterministicGivenSeed) {
  std::vector<MessageBuffer> buffers(3);
  for (uint64_t i = 0; i < 4; ++i) buffers[i % 3].Add(F(i), 0);
  RandomScheduler a(3, 99);
  RandomScheduler b(3, 99);
  for (uint64_t t = 0; t < 50; ++t) {
    Scheduler::Choice ca = a.Next(buffers, t);
    Scheduler::Choice cb = b.Next(buffers, t);
    EXPECT_EQ(ca.node_index, cb.node_index);
    EXPECT_EQ(ca.deliveries, cb.deliveries);
  }
}

}  // namespace
}  // namespace calm::net
