// Parameterized property suites: invariants that must hold across the whole
// query corpus and seed sweeps, exercised via TEST_P / value-parameterized
// gtest.

#include <gtest/gtest.h>

#include <memory>

#include "base/components.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/wellfounded.h"
#include "monotonicity/checker.h"
#include "queries/graph_queries.h"
#include "queries/paper_programs.h"
#include "workload/graph_gen.h"
#include "workload/instance_gen.h"

namespace calm {
namespace {

// ---------------------------------------------------------------------------
// Property 1: genericity. Every query in the corpus commutes with random
// permutations of dom on random inputs.
// ---------------------------------------------------------------------------

struct QueryFactory {
  const char* label;
  std::unique_ptr<Query> (*make)();
};

std::unique_ptr<Query> MakeClique3() { return queries::MakeCliqueQuery(3); }
std::unique_ptr<Query> MakeStar2() { return queries::MakeStarQuery(2); }
std::unique_ptr<Query> MakeQtcDatalog() {
  return std::make_unique<datalog::DatalogQuery>(
      queries::ComplementTcProgram());
}
std::unique_ptr<Query> MakeP1() {
  return std::make_unique<datalog::DatalogQuery>(queries::Example51P1());
}
std::unique_ptr<Query> MakeP2() {
  return std::make_unique<datalog::DatalogQuery>(queries::Example51P2());
}

const QueryFactory kGraphCorpus[] = {
    {"tc", queries::MakeTransitiveClosure},
    {"qtc", queries::MakeComplementTransitiveClosure},
    {"clique3", MakeClique3},
    {"star2", MakeStar2},
    {"two_hop", queries::MakeTwoHopJoin},
    {"triangles", queries::MakeTrianglesUnlessTwoDisjoint},
    {"qtc_datalog", MakeQtcDatalog},
    {"p1", MakeP1},
    {"p2", MakeP2},
};

class GenericityProperty
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(GenericityProperty, CommutesWithPermutations) {
  auto [query_index, seed] = GetParam();
  std::unique_ptr<Query> q = kGraphCorpus[query_index].make();
  Instance in = workload::RandomGraph(6, 0.3, seed);
  std::map<Value, Value> pi = workload::RandomPermutation(in, seed + 101);
  Status s = CheckGenericity(*q, in, pi);
  EXPECT_TRUE(s.ok()) << kGraphCorpus[query_index].label << ": "
                      << s.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, GenericityProperty,
    ::testing::Combine(::testing::Range<size_t>(0, 9),
                       ::testing::Values(1, 2, 3, 4)),
    [](const auto& info) {
      return std::string(kGraphCorpus[std::get<0>(info.param)].label) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Property 2: checker verdict monotonicity. Because every domain-disjoint J
// is domain-distinct and every domain-distinct J is an arbitrary J, a
// counterexample found for a *weaker* class is also one for the stronger
// class: in(M) => in(M^i), and in(M) => in(Mdistinct) => in(Mdisjoint).
// ---------------------------------------------------------------------------

class CheckerConsistencyProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(CheckerConsistencyProperty, VerdictsAreOrdered) {
  using monotonicity::ExhaustiveOptions;
  using monotonicity::FindViolation;
  using monotonicity::MonotonicityClass;
  std::unique_ptr<Query> q = kGraphCorpus[GetParam()].make();
  ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 2;
  o.fresh_values = 2;
  o.max_facts_j = 2;
  auto in_m = FindViolation(*q, MonotonicityClass::kMonotone, o);
  auto in_dist = FindViolation(*q, MonotonicityClass::kDomainDistinct, o);
  auto in_disj = FindViolation(*q, MonotonicityClass::kDomainDisjoint, o);
  ASSERT_TRUE(in_m.ok() && in_dist.ok() && in_disj.ok());
  // no M violation => no Mdistinct violation => no Mdisjoint violation.
  if (!in_m->has_value()) {
    EXPECT_FALSE(in_dist->has_value());
  }
  if (!in_dist->has_value()) {
    EXPECT_FALSE(in_disj->has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CheckerConsistencyProperty,
                         ::testing::Range<size_t>(0, 9),
                         [](const auto& info) {
                           return std::string(kGraphCorpus[info.param].label);
                         });

// ---------------------------------------------------------------------------
// Property 3: naive and semi-naive evaluation agree on a program corpus and
// seed sweep; the well-founded model of a stratifiable program is total and
// equals the stratified semantics.
// ---------------------------------------------------------------------------

struct ProgramCase {
  const char* label;
  const char* text;
};

const ProgramCase kProgramCorpus[] = {
    {"tc", "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T"},
    {"qtc",
     "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).\n"
     "O(x, y) :- Adom(x), Adom(y), !T(x, y). .output O"},
    {"same_gen",
     // Same-generation: a classic nonlinear recursion.
     "S(x, y) :- E(w, x), E(w, y).\n"
     "S(x, y) :- E(u, x), S(u, v), E(v, y). .output S"},
    {"p1",
     "T(x) :- E(x, y), E(y, z), E(z, x), y != x, y != z, x != z.\n"
     "O(x) :- Adom(x), !T(x). .output O"},
    {"three_strata",
     "A(x, y) :- E(x, y).\n"
     "B(x) :- A(x, y), !Loop(x).\n"
     "Loop(x) :- E(x, x).\n"
     "O(x) :- Adom(x), !B(x). .output O"},
    {"constants_and_repeats",
     "Self(x) :- E(x, x).\n"
     "O(x) :- E(x, y), !Self(y), x != y. .output O"},
};

class EvaluatorAgreementProperty
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(EvaluatorAgreementProperty, NaiveSemiNaiveAndWfsAgree) {
  auto [prog_index, seed] = GetParam();
  datalog::Program p = datalog::ParseOrDie(kProgramCorpus[prog_index].text);
  Instance in = workload::RandomGraph(6, 0.35, seed);

  datalog::EvalOptions semi;
  datalog::EvalOptions naive;
  naive.semi_naive = false;
  datalog::EvalOptions no_reorder;
  no_reorder.reorder_joins = false;
  Result<Instance> a = datalog::Evaluate(p, in, semi);
  Result<Instance> b = datalog::Evaluate(p, in, naive);
  Result<Instance> c = datalog::Evaluate(p, in, no_reorder);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.value(), c.value());

  Result<datalog::WellFoundedModel> wf = datalog::EvaluateWellFounded(p, in);
  ASSERT_TRUE(wf.ok()) << wf.status();
  EXPECT_EQ(wf->definitely, a.value());
  EXPECT_TRUE(wf->Undefined().empty())
      << "stratifiable programs have total well-founded models";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, EvaluatorAgreementProperty,
    ::testing::Combine(::testing::Range<size_t>(0, 6),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(kProgramCorpus[std::get<0>(info.param)].label) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Property 4: components partition the instance and are pairwise domain
// disjoint, on random multi-part inputs.
// ---------------------------------------------------------------------------

class ComponentsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ComponentsProperty, PartitionAndDisjointness) {
  uint64_t seed = GetParam();
  Instance input;
  for (uint64_t part = 0; part < 3; ++part) {
    input.InsertAll(
        workload::RandomGraph(4, 0.4, seed * 7 + part, /*base=*/part * 100));
  }
  std::vector<Instance> comps = Components(input);
  Instance reunion;
  size_t total = 0;
  for (const Instance& c : comps) {
    EXPECT_FALSE(c.empty());
    total += c.size();
    reunion.InsertAll(c);
    // Minimality: each component is itself a single component.
    EXPECT_EQ(Components(c).size(), 1u);
  }
  EXPECT_EQ(total, input.size());
  EXPECT_EQ(reunion, input);
  for (size_t a = 0; a < comps.size(); ++a) {
    for (size_t b = a + 1; b < comps.size(); ++b) {
      EXPECT_TRUE(IsDomainDisjointFrom(comps[a], comps[b]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComponentsProperty,
                         ::testing::Range<uint64_t>(0, 8));

// ---------------------------------------------------------------------------
// Property 5: the con-Datalog¬ distribution law (Lemma 5.2) as a per-seed
// parameterized sweep: evaluating P1 componentwise equals evaluating whole.
// ---------------------------------------------------------------------------

class Lemma52Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma52Property, ConProgramDistributes) {
  uint64_t seed = GetParam();
  datalog::DatalogQuery p1 = queries::Example51P1();
  Instance input;
  for (uint64_t part = 0; part < 3; ++part) {
    input.InsertAll(
        workload::RandomGraph(4, 0.5, seed * 13 + part, /*base=*/part * 100));
  }
  Instance whole = p1.Eval(input).value();
  Instance by_parts;
  for (const Instance& c : Components(input)) {
    by_parts.InsertAll(p1.Eval(c).value());
  }
  EXPECT_EQ(whole, by_parts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma52Property,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace calm
