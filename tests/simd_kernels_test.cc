// Edge-case and byte-identity tests for the portable SIMD kernels in
// base/simd.h. Every vector path must match the scalar reference bodies bit
// for bit — the bytecode engine's determinism contract (identical emission
// order at every dispatch level) rests on it. The tests sweep the dispatch
// level through SetLevel; on machines without a given ISA the request clamps
// to the best supported level, so the sweep degrades to re-running the
// scalar path rather than failing.

#include "base/simd.h"

#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"

namespace calm::simd {
namespace {

// Levels worth sweeping on this build. Clamp() keeps unsupported requests
// safe, but listing them explicitly documents the intent.
std::vector<Level> SweepLevels() {
  return {Level::kScalar, Level::kSSE2, Level::kAVX2, Level::kNEON};
}

// RAII guard so a failing test cannot leak a forced dispatch level into the
// rest of the suite.
class LevelGuard {
 public:
  LevelGuard() : saved_(ActiveLevel()) {}
  ~LevelGuard() { SetLevel(saved_); }

 private:
  Level saved_;
};

// The vector kernels process 8 (AVX2) or 4 (SSE2/NEON) lanes per step with a
// scalar tail, so the interesting sizes bracket both widths.
const uint32_t kBoundarySizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33};

std::vector<uint32_t> RandomColumn(size_t n, uint32_t cardinality,
                                   std::mt19937* rng) {
  std::vector<uint32_t> col(n);
  for (auto& v : col) v = (*rng)() % cardinality;
  return col;
}

TEST(SimdKernelsTest, SetLevelClampsToBuildCapability) {
  LevelGuard guard;
  SetLevel(Level::kAVX2);
  Level got = ActiveLevel();
  // Whatever we got back must be something this build can actually run.
  EXPECT_TRUE(got == Level::kScalar || CompiledIn());
  SetLevel(Level::kScalar);
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
}

TEST(SimdKernelsTest, FilterEmptyRange) {
  LevelGuard guard;
  std::vector<uint32_t> a(8, 1), b(8, 1), out(8, 0xdeadbeef);
  for (Level level : SweepLevels()) {
    SetLevel(level);
    EXPECT_EQ(FilterEq(a.data(), b.data(), 0, 0, out.data()), 0u);
    EXPECT_EQ(FilterNe(a.data(), b.data(), 0, 0, out.data()), 0u);
    EXPECT_EQ(FilterEqConst(a.data(), 4, 4, 1, out.data()), 0u);
    EXPECT_EQ(FilterNeConst(a.data(), 4, 4, 1, out.data()), 0u);
    EXPECT_EQ(out[0], 0xdeadbeefu);  // nothing written
  }
}

TEST(SimdKernelsTest, FilterAllRowsPass) {
  LevelGuard guard;
  for (uint32_t n : kBoundarySizes) {
    std::vector<uint32_t> a(n, 7), b(n, 7), out(n + 1, 0);
    for (Level level : SweepLevels()) {
      SetLevel(level);
      ASSERT_EQ(FilterEq(a.data(), b.data(), 0, n, out.data()), n)
          << "n=" << n << " level=" << LevelName(level);
      for (uint32_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i);
      ASSERT_EQ(FilterEqConst(a.data(), 0, n, 7, out.data()), n);
      for (uint32_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i);
    }
  }
}

TEST(SimdKernelsTest, FilterAllRowsRejected) {
  LevelGuard guard;
  for (uint32_t n : kBoundarySizes) {
    std::vector<uint32_t> a(n), b(n), out(n + 1, 0xdeadbeef);
    for (uint32_t i = 0; i < n; ++i) {
      a[i] = i;
      b[i] = i + 1;  // never equal
    }
    for (Level level : SweepLevels()) {
      SetLevel(level);
      EXPECT_EQ(FilterEq(a.data(), b.data(), 0, n, out.data()), 0u)
          << "n=" << n << " level=" << LevelName(level);
      EXPECT_EQ(FilterNe(a.data(), b.data(), 0, n, out.data()), n);
      EXPECT_EQ(FilterEqConst(a.data(), 0, n, 0xffffffffu, out.data()), 0u);
      EXPECT_EQ(FilterNeConst(a.data(), 0, n, 0xffffffffu, out.data()), n);
    }
  }
}

TEST(SimdKernelsTest, FilterNonZeroBeginMatchesScalar) {
  LevelGuard guard;
  std::mt19937 rng(99);
  std::vector<uint32_t> a = RandomColumn(64, 4, &rng);
  std::vector<uint32_t> b = RandomColumn(64, 4, &rng);
  // Every (begin, end) sub-range must agree with the scalar reference —
  // the engine filters delta sub-ranges, not whole columns.
  for (uint32_t begin : {0u, 1u, 7u, 8u, 9u, 30u}) {
    for (uint32_t end : {begin, begin + 1, begin + 8, 63u, 64u}) {
      if (end < begin || end > 64) continue;
      std::vector<uint32_t> ref(64), got(64);
      SetLevel(Level::kScalar);
      size_t nref = FilterEq(a.data(), b.data(), begin, end, ref.data());
      for (Level level : SweepLevels()) {
        SetLevel(level);
        size_t ngot = FilterEq(a.data(), b.data(), begin, end, got.data());
        ASSERT_EQ(ngot, nref) << "begin=" << begin << " end=" << end
                              << " level=" << LevelName(level);
        for (size_t i = 0; i < nref; ++i) EXPECT_EQ(got[i], ref[i]);
      }
    }
  }
}

TEST(SimdKernelsTest, RefineBoundarySizesAndAliasing) {
  LevelGuard guard;
  std::mt19937 rng(7);
  std::vector<uint32_t> a = RandomColumn(128, 3, &rng);
  std::vector<uint32_t> b = RandomColumn(128, 3, &rng);
  for (uint32_t n : kBoundarySizes) {
    std::vector<uint32_t> rows(n);
    for (uint32_t i = 0; i < n; ++i) rows[i] = i * 3;  // sparse ascending
    SetLevel(Level::kScalar);
    std::vector<uint32_t> ref(n + 1);
    size_t nref = RefineEq(a.data(), b.data(), rows.data(), n, ref.data());
    for (Level level : SweepLevels()) {
      SetLevel(level);
      std::vector<uint32_t> out(n + 1, 0xdeadbeef);
      ASSERT_EQ(RefineEq(a.data(), b.data(), rows.data(), n, out.data()), nref)
          << "n=" << n << " level=" << LevelName(level);
      for (size_t i = 0; i < nref; ++i) EXPECT_EQ(out[i], ref[i]);
      // The engine refines in place: out aliases rows.
      std::vector<uint32_t> alias = rows;
      ASSERT_EQ(RefineEq(a.data(), b.data(), alias.data(), n, alias.data()),
                nref);
      for (size_t i = 0; i < nref; ++i) EXPECT_EQ(alias[i], ref[i]);
    }
  }
}

// A frame with the same variable in two positions refines on column equality
// against itself — a[r] == a[r] keeps everything, and the mirrored column
// must too.
TEST(SimdKernelsTest, RefineRepeatedVariableFrames) {
  LevelGuard guard;
  std::mt19937 rng(11);
  std::vector<uint32_t> a = RandomColumn(64, 5, &rng);
  std::vector<uint32_t> mirror = a;  // distinct storage, equal values
  std::vector<uint32_t> rows(17);
  for (uint32_t i = 0; i < 17; ++i) rows[i] = i * 2;
  for (Level level : SweepLevels()) {
    SetLevel(level);
    std::vector<uint32_t> out(32);
    EXPECT_EQ(RefineEq(a.data(), a.data(), rows.data(), 17, out.data()), 17u)
        << LevelName(level);
    EXPECT_EQ(RefineEq(a.data(), mirror.data(), rows.data(), 17, out.data()),
              17u);
    EXPECT_EQ(RefineNe(a.data(), a.data(), rows.data(), 17, out.data()), 0u);
    EXPECT_EQ(RefineNe(a.data(), mirror.data(), rows.data(), 17, out.data()),
              0u);
  }
}

TEST(SimdKernelsTest, RefineNeConstMatchesScalar) {
  LevelGuard guard;
  std::mt19937 rng(23);
  std::vector<uint32_t> a = RandomColumn(256, 4, &rng);
  for (uint32_t n : kBoundarySizes) {
    std::vector<uint32_t> rows(n);
    for (uint32_t i = 0; i < n; ++i) rows[i] = i * 5;
    SetLevel(Level::kScalar);
    std::vector<uint32_t> ref(n + 1);
    size_t nref = RefineNeConst(a.data(), rows.data(), n, 2, ref.data());
    for (Level level : SweepLevels()) {
      SetLevel(level);
      std::vector<uint32_t> out(n + 1);
      ASSERT_EQ(RefineNeConst(a.data(), rows.data(), n, 2, out.data()), nref)
          << "n=" << n << " level=" << LevelName(level);
      for (size_t i = 0; i < nref; ++i) EXPECT_EQ(out[i], ref[i]);
    }
  }
}

TEST(SimdKernelsTest, GatherBoundarySizes) {
  LevelGuard guard;
  std::mt19937 rng(31);
  std::vector<uint32_t> base = RandomColumn(512, 0xffffffffu, &rng);
  for (uint32_t n : kBoundarySizes) {
    std::vector<uint32_t> idx(n);
    for (uint32_t i = 0; i < n; ++i) idx[i] = (i * 37) % 512;
    for (Level level : SweepLevels()) {
      SetLevel(level);
      std::vector<uint32_t> out(n + 1, 0xdeadbeef);
      Gather(base.data(), idx.data(), n, out.data());
      for (uint32_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], base[idx[i]])
            << "n=" << n << " i=" << i << " level=" << LevelName(level);
      EXPECT_EQ(out[n], 0xdeadbeefu);  // no overwrite past n
    }
  }
}

TEST(SimdKernelsTest, Mix64BatchMatchesScalarFinalizer) {
  LevelGuard guard;
  std::mt19937_64 rng(41);
  for (uint32_t n : kBoundarySizes) {
    std::vector<uint64_t> keys(n);
    for (auto& k : keys) k = rng();
    SetLevel(Level::kScalar);
    std::vector<uint64_t> ref(n + 1);
    Mix64Batch(keys.data(), n, ref.data());
    for (uint32_t i = 0; i < n; ++i)
      ASSERT_EQ(ref[i], detail::Mix64One(keys[i]));
    for (Level level : SweepLevels()) {
      SetLevel(level);
      std::vector<uint64_t> out(n + 1);
      Mix64Batch(keys.data(), n, out.data());
      for (uint32_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], ref[i])
            << "n=" << n << " i=" << i << " level=" << LevelName(level);
    }
  }
}

// The workhorse identity check: a seeded random corpus of columns with mixed
// cardinalities, every kernel, every sweepable level, byte-identical output
// vs the scalar reference (count, values, and order).
TEST(SimdKernelsTest, ScalarVsSimdIdentityOnSeededCorpus) {
  LevelGuard guard;
  std::mt19937 rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const uint32_t n = 1 + rng() % 200;
    const uint32_t card = 1 + rng() % 8;  // small domain → dense matches
    std::vector<uint32_t> a = RandomColumn(n, card, &rng);
    std::vector<uint32_t> b = RandomColumn(n, card, &rng);
    const uint32_t v = rng() % card;
    const uint32_t begin = rng() % (n + 1);
    const uint32_t end = begin + rng() % (n - begin + 1);

    std::vector<uint32_t> rows;
    for (uint32_t r = 0; r < n; ++r)
      if (rng() % 2 == 0) rows.push_back(r);

    SetLevel(Level::kScalar);
    std::vector<uint32_t> r1(n + 1), r2(n + 1), r3(n + 1), r4(n + 1);
    std::vector<uint32_t> r5(n + 1), r6(n + 1), r7(n + 1);
    size_t n1 = FilterEq(a.data(), b.data(), begin, end, r1.data());
    size_t n2 = FilterNe(a.data(), b.data(), begin, end, r2.data());
    size_t n3 = FilterEqConst(a.data(), begin, end, v, r3.data());
    size_t n4 = FilterNeConst(a.data(), begin, end, v, r4.data());
    size_t n5 = RefineEq(a.data(), b.data(), rows.data(), rows.size(),
                         r5.data());
    size_t n6 = RefineNe(a.data(), b.data(), rows.data(), rows.size(),
                         r6.data());
    size_t n7 = RefineNeConst(a.data(), rows.data(), rows.size(), v,
                              r7.data());

    for (Level level : SweepLevels()) {
      SetLevel(level);
      std::vector<uint32_t> out(n + 1);
      auto check = [&](size_t got, size_t want, const std::vector<uint32_t>& ref,
                       const char* kernel) {
        ASSERT_EQ(got, want) << kernel << " trial=" << trial
                             << " level=" << LevelName(level);
        for (size_t i = 0; i < want; ++i)
          ASSERT_EQ(out[i], ref[i]) << kernel << " trial=" << trial << " i="
                                    << i << " level=" << LevelName(level);
      };
      check(FilterEq(a.data(), b.data(), begin, end, out.data()), n1, r1,
            "FilterEq");
      check(FilterNe(a.data(), b.data(), begin, end, out.data()), n2, r2,
            "FilterNe");
      check(FilterEqConst(a.data(), begin, end, v, out.data()), n3, r3,
            "FilterEqConst");
      check(FilterNeConst(a.data(), begin, end, v, out.data()), n4, r4,
            "FilterNeConst");
      check(RefineEq(a.data(), b.data(), rows.data(), rows.size(), out.data()),
            n5, r5, "RefineEq");
      check(RefineNe(a.data(), b.data(), rows.data(), rows.size(), out.data()),
            n6, r6, "RefineNe");
      check(RefineNeConst(a.data(), rows.data(), rows.size(), v, out.data()),
            n7, r7, "RefineNeConst");
    }
  }
}

}  // namespace
}  // namespace calm::simd
