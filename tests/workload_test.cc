#include <gtest/gtest.h>

#include "base/components.h"
#include "workload/graph_gen.h"
#include "workload/instance_gen.h"

namespace calm::workload {
namespace {

TEST(GraphGenTest, PathCycleCliqueStar) {
  EXPECT_EQ(Path(4).size(), 3u);
  EXPECT_EQ(Cycle(4).size(), 4u);
  EXPECT_EQ(Clique(4).size(), 12u);  // n*(n-1) directed edges
  EXPECT_EQ(Star(3).size(), 3u);
  EXPECT_TRUE(Path(1).empty());
  EXPECT_TRUE(Path(0).empty());
  EXPECT_TRUE(Cycle(1).empty());
}

TEST(GraphGenTest, BaseOffsetsShiftVertices) {
  Instance a = Path(3, 0);
  Instance b = Path(3, 100);
  EXPECT_TRUE(IsDomainDisjointFrom(b, a));
}

TEST(GraphGenTest, RandomGraphDeterministicAndBounded) {
  Instance a = RandomGraph(10, 0.3, 5);
  Instance b = RandomGraph(10, 0.3, 5);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, RandomGraph(10, 0.3, 6));
  // No self loops.
  for (const Tuple& t : a.TuplesOf(InternName("E"))) EXPECT_NE(t[0], t[1]);
}

TEST(GraphGenTest, RandomGraphMExactCount) {
  Instance g = RandomGraphM(10, 17, 3);
  EXPECT_EQ(g.size(), 17u);
  // Requesting more edges than possible caps at n*(n-1).
  EXPECT_EQ(RandomGraphM(3, 100, 1).size(), 6u);
}

TEST(GraphGenTest, DisjointUnionHasComponents) {
  Instance u = DisjointUnion(3, 4, &Cycle);
  EXPECT_EQ(Components(u).size(), 3u);
}

TEST(GraphGenTest, BipartiteGridDag) {
  EXPECT_EQ(Bipartite(2, 3).size(), 6u);
  EXPECT_EQ(Grid(3, 2).size(), 7u);  // 2*2 right + 3*1 down
  Instance dag = LayeredDag(3, 4, 2, 9);
  EXPECT_LE(dag.size(), 2u * 4u * 2u);
  EXPECT_FALSE(dag.empty());
}

TEST(InstanceGenTest, RandomInstanceRespectsSchema) {
  Schema schema({{"R", 2}, {"S", 1}});
  Instance in = RandomInstance(schema, 12, 5, 3);
  EXPECT_EQ(in.size(), 12u);
  EXPECT_TRUE(in.IsOver(schema));
}

TEST(InstanceGenTest, DistinctExtensionIsDistinct) {
  Schema schema({{"R", 2}});
  Instance i = RandomInstance(schema, 6, 4, 1);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Instance j = RandomDomainDistinctExtension(schema, i, 4, 3, seed);
    EXPECT_TRUE(IsDomainDistinctFrom(j, i)) << seed;
  }
}

TEST(InstanceGenTest, DisjointExtensionIsDisjoint) {
  Schema schema({{"R", 2}});
  Instance i = RandomInstance(schema, 6, 4, 1);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Instance j = RandomDomainDisjointExtension(schema, i, 4, 3, seed);
    EXPECT_TRUE(IsDomainDisjointFrom(j, i)) << seed;
  }
}

TEST(InstanceGenTest, RandomPermutationIsBijective) {
  Schema schema({{"R", 2}});
  Instance i = RandomInstance(schema, 8, 6, 2);
  std::map<Value, Value> pi = RandomPermutation(i, 7);
  std::set<Value> domain = i.ActiveDomain();
  EXPECT_EQ(pi.size(), domain.size());
  std::set<Value> image;
  for (auto [from, to] : pi) {
    EXPECT_TRUE(domain.count(from) > 0);
    image.insert(to);
  }
  EXPECT_EQ(image, domain);
}

}  // namespace
}  // namespace calm::workload
