// Tests for the program fuzzer (workload/fuzzer.h): generator determinism
// and fragment coverage, corpus round-trips (including torn-tail repair and
// a kill-anywhere resume), a pinned mini-survey, and the injected-
// misclassification negative control.

#include "workload/fuzzer.h"

#include <sys/wait.h>
#include <unistd.h>

#include <fstream>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "datalog/parser.h"
#include "datalog/program.h"

namespace calm::workload {
namespace {

std::string MakeTempDir() {
  static int n = 0;
  std::string dir = ::testing::TempDir() + "calm_fuzzer_" +
                    std::to_string(::getpid()) + "_" + std::to_string(n++);
  EXPECT_TRUE(durable::MakeDirs(dir).ok());
  return dir;
}

const ProgramShape kAllShapes[] = {
    ProgramShape::kPositive,      ProgramShape::kInequality,
    ProgramShape::kSemiPositive,  ProgramShape::kConnected,
    ProgramShape::kSemiConnected, ProgramShape::kStratified,
    ProgramShape::kWinMove,
};

// The fragment name each shape must classify to (the generator forces the
// distinguishing syntax, so this is exact, not statistical).
const char* WantFragment(ProgramShape shape) {
  switch (shape) {
    case ProgramShape::kPositive:
      return "Datalog";
    case ProgramShape::kInequality:
      return "Datalog(!=)";
    case ProgramShape::kSemiPositive:
      return "SP-Datalog";
    case ProgramShape::kConnected:
      return "con-Datalog~";
    case ProgramShape::kSemiConnected:
      return "semicon-Datalog~";
    case ProgramShape::kStratified:
      return "Datalog~";
    case ProgramShape::kWinMove:
      return "unstratifiable";
  }
  return "?";
}

TEST(FuzzerGenerator, DeterministicPerSeed) {
  for (ProgramShape shape : kAllShapes) {
    for (uint64_t seed : {0ull, 1ull, 17ull, 0xFFFFFFFFFFFFull}) {
      FuzzerOptions o;
      o.seed = seed;
      o.shape = shape;
      GeneratedProgram a = GenerateProgram(o);
      GeneratedProgram b = GenerateProgram(o);
      EXPECT_EQ(a.text, b.text)
          << ProgramShapeName(shape) << " seed " << seed;
      EXPECT_EQ(a.seed, seed);
      EXPECT_EQ(a.shape, shape);
    }
  }
  // Different seeds actually explore the space.
  std::set<std::string> texts;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    FuzzerOptions o;
    o.seed = seed;
    o.shape = ProgramShape::kConnected;
    texts.insert(GenerateProgram(o).text);
  }
  EXPECT_GE(texts.size(), 5u);
}

TEST(FuzzerGenerator, EveryShapeLandsInItsFragment) {
  for (ProgramShape shape : kAllShapes) {
    for (uint64_t seed = 0; seed < 25; ++seed) {
      FuzzerOptions o;
      o.seed = seed;
      o.shape = shape;
      GeneratedProgram gp = GenerateProgram(o);
      Result<datalog::Program> parsed = datalog::Parse(gp.text);
      ASSERT_TRUE(parsed.ok()) << gp.text << parsed.status().ToString();
      Result<datalog::DatalogQuery> q =
          datalog::DatalogQuery::Create(*parsed, "t", gp.semantics);
      ASSERT_TRUE(q.ok()) << gp.text << q.status().ToString();
      EXPECT_EQ(q->fragment().FragmentName(), WantFragment(shape)) << gp.text;
    }
  }
}

TEST(FuzzerGenerator, KnobRangesStayValidAndInFragment) {
  for (ProgramShape shape : kAllShapes) {
    for (size_t arity = 1; arity <= 3; ++arity) {
      for (size_t strata = 1; strata <= 3; ++strata) {
        FuzzerOptions o;
        o.seed = 7;
        o.shape = shape;
        o.max_arity = arity;
        o.max_strata = strata;
        o.max_rules = 4;
        o.max_body_atoms = 4;
        o.constants = 3;
        GeneratedProgram gp = GenerateProgram(o);
        Result<datalog::Program> parsed = datalog::Parse(gp.text);
        ASSERT_TRUE(parsed.ok()) << gp.text;
        Result<datalog::DatalogQuery> q =
            datalog::DatalogQuery::Create(*parsed, "t", gp.semantics);
        ASSERT_TRUE(q.ok()) << gp.text << q.status().ToString();
        EXPECT_EQ(q->fragment().FragmentName(), WantFragment(shape))
            << gp.text;
      }
    }
  }
}

CorpusRecord SampleRecord(uint64_t seed) {
  CorpusRecord rec;
  rec.seed = seed;
  rec.shape = ProgramShape::kSemiPositive;
  rec.semantics = datalog::DatalogQuery::Semantics::kStratified;
  rec.text = "O(x) :- F(x), !E(x, x).\n.output O\n";
  rec.fragment = "SP-Datalog";
  rec.class_bucket = "Mdistinct";
  rec.strategy = "absence";
  rec.conformant = true;
  rec.bsp_supersteps = 3;
  rec.stats.derived_facts = 4;
  rec.stats.fixpoint_rounds = 2;
  rec.stats.rule_applications = 9;
  monotonicity::LadderRow row;
  row.i = 1;
  row.in_m = false;
  row.in_distinct = true;
  row.in_disjoint = true;
  monotonicity::Counterexample cex;
  cex.i.Insert(Fact("F", {Value::FromInt(1)}));
  cex.j.Insert(Fact("E", {Value::FromInt(1), Value::FromInt(1)}));
  cex.retracted = Fact("O", {Value::FromInt(1)});
  row.m_witness = cex;
  rec.ladder.rows.push_back(row);
  monotonicity::LadderRow row2;
  row2.i = 2;
  row2.in_m = false;
  row2.in_distinct = true;
  row2.in_disjoint = true;
  rec.ladder.rows.push_back(row2);
  return rec;
}

TEST(FuzzerCorpus, RecordRoundTrip) {
  CorpusRecord rec = SampleRecord(42);
  durable::ByteWriter w;
  EncodeCorpusRecord(rec, &w);
  durable::ByteReader r(w.data());
  CorpusRecord back;
  ASSERT_TRUE(DecodeCorpusRecord(&r, &back));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.seed, rec.seed);
  EXPECT_EQ(back.shape, rec.shape);
  EXPECT_EQ(back.semantics, rec.semantics);
  EXPECT_EQ(back.text, rec.text);
  EXPECT_EQ(back.fragment, rec.fragment);
  EXPECT_EQ(back.class_bucket, rec.class_bucket);
  EXPECT_EQ(back.strategy, rec.strategy);
  EXPECT_EQ(back.conformant, rec.conformant);
  EXPECT_EQ(back.bsp_supersteps, rec.bsp_supersteps);
  EXPECT_EQ(back.stats.derived_facts, rec.stats.derived_facts);
  EXPECT_EQ(back.stats.fixpoint_rounds, rec.stats.fixpoint_rounds);
  EXPECT_EQ(back.stats.rule_applications, rec.stats.rule_applications);
  ASSERT_EQ(back.ladder.rows.size(), 2u);
  EXPECT_FALSE(back.ladder.rows[0].in_m);
  EXPECT_TRUE(back.ladder.rows[0].in_distinct);
  ASSERT_TRUE(back.ladder.rows[0].m_witness.has_value());
  EXPECT_EQ(back.ladder.rows[0].m_witness->i, rec.ladder.rows[0].m_witness->i);
  EXPECT_EQ(back.ladder.rows[0].m_witness->j, rec.ladder.rows[0].m_witness->j);
  EXPECT_EQ(back.ladder.rows[0].m_witness->retracted,
            rec.ladder.rows[0].m_witness->retracted);
  EXPECT_FALSE(back.ladder.rows[1].m_witness.has_value());
}

TEST(FuzzerCorpus, DivergenceRoundTrip) {
  Divergence d{77, "bsp", "outputs differ"};
  durable::ByteWriter w;
  EncodeDivergenceRecord(d, &w);
  durable::ByteReader r(w.data());
  Divergence back;
  ASSERT_TRUE(DecodeDivergenceRecord(&r, &back));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.seed, 77u);
  EXPECT_EQ(back.stage, "bsp");
  EXPECT_EQ(back.detail, "outputs differ");
}

TEST(FuzzerCorpus, PersistReplayAndTornTailRepair) {
  const std::string path = MakeTempDir() + "/corpus.wal";
  {
    Corpus corpus;
    ASSERT_TRUE(corpus.Open(path).ok());
    ASSERT_TRUE(corpus.Add(SampleRecord(1)).ok());
    ASSERT_TRUE(corpus.Add(SampleRecord(2)).ok());
    ASSERT_TRUE(corpus.AddDivergence(Divergence{2, "fault", "w"}).ok());
  }
  // A crash mid-append leaves a torn tail; replay must truncate it and keep
  // every complete record.
  {
    std::ofstream torn(path, std::ios::binary | std::ios::app);
    const char garbage[] = "\x40\x00\x00\x00 torn";
    torn.write(garbage, sizeof(garbage) - 1);
  }
  {
    Corpus corpus;
    ASSERT_TRUE(corpus.Open(path).ok());
    EXPECT_EQ(corpus.records().size(), 2u);
    EXPECT_TRUE(corpus.Contains(1));
    EXPECT_TRUE(corpus.Contains(2));
    EXPECT_FALSE(corpus.Contains(3));
    ASSERT_EQ(corpus.divergences().size(), 1u);
    EXPECT_EQ(corpus.divergences()[0].stage, "fault");
    // Appends resume cleanly after the repair.
    ASSERT_TRUE(corpus.Add(SampleRecord(3)).ok());
  }
  {
    Corpus corpus;
    ASSERT_TRUE(corpus.Open(path).ok());
    EXPECT_EQ(corpus.records().size(), 3u);
    EXPECT_TRUE(corpus.Contains(3));
  }
}

TEST(FuzzerSurvey, PinnedMiniSurvey) {
  SurveyOptions o;
  o.seed = 2026;
  o.programs = 50;
  Result<SurveyStats> stats = RunSurvey(o);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->programs, 50u);
  EXPECT_EQ(stats->skipped, 0u);
  EXPECT_EQ(stats->disagreements, 0u);
  // Shapes round-robin over 50 programs: shape 0 gets 8, the rest 7 — and
  // the generator pins each shape's fragment, so this histogram is exact.
  std::map<std::string, size_t> want_fragments{
      {"Datalog", 8},          {"Datalog(!=)", 7},   {"SP-Datalog", 7},
      {"con-Datalog~", 7},     {"semicon-Datalog~", 7}, {"Datalog~", 7},
      {"unstratifiable", 7},
  };
  EXPECT_EQ(stats->fragment_histogram, want_fragments);
  // The class histogram is pinned for this seed (bounded-ladder verdicts
  // are deterministic); a change here means checker or generator drift.
  size_t total = 0;
  for (const auto& [bucket, count] : stats->class_histogram) total += count;
  EXPECT_EQ(total, 50u);
  EXPECT_EQ(stats->class_histogram, (std::map<std::string, size_t>{
                                        {"M", 34},
                                        {"Mdistinct", 9},
                                        {"Mdisjoint", 7},
                                    }))
      << [&] {
           std::string got;
           for (const auto& [bucket, count] : stats->class_histogram) {
             got += bucket + "=" + std::to_string(count) + " ";
           }
           return got;
         }();
  // Every guarantee-carrying program ran its strategy and its BSP twin.
  EXPECT_EQ(stats->strategy_runs, 43u);  // 50 minus the 7 "Datalog~" shapes
  EXPECT_EQ(stats->bsp_runs, 43u);
}

TEST(FuzzerSurvey, ResumesAcrossHardKillWithoutReclassifying) {
  const std::string path = MakeTempDir() + "/corpus.wal";
  SurveyOptions o;
  o.seed = 99;
  o.programs = 10;
  o.corpus_path = path;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Crash at the 4th durable corpus append: 4 records survive.
    failpoint::Arm("durable.wal.synced", 4);
    Result<SurveyStats> r = RunSurvey(o);
    ::_exit(r.ok() ? 7 : 8);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), failpoint::kCrashExitCode);

  // Resume: the 4 durable classifications are skipped, not recomputed, and
  // the survey totals match an uninterrupted run.
  Result<SurveyStats> resumed = RunSurvey(o);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->skipped, 4u);
  EXPECT_EQ(resumed->programs, 6u);
  EXPECT_EQ(resumed->disagreements, 0u);
  size_t total = 0;
  for (const auto& [fragment, count] : resumed->fragment_histogram) {
    total += count;
  }
  EXPECT_EQ(total, 10u);

  SurveyOptions fresh = o;
  fresh.corpus_path = MakeTempDir() + "/fresh.wal";
  Result<SurveyStats> oracle = RunSurvey(fresh);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(oracle->fragment_histogram, resumed->fragment_histogram);
  EXPECT_EQ(oracle->class_histogram, resumed->class_histogram);
}

TEST(FuzzerSurvey, NegativeControlIsCaught) {
  // Direct: an SP-shaped text wearing the "positive" label trips both the
  // fragment oracle and the ladder's fragment-theorem assertion.
  GeneratedProgram lie;
  lie.shape = ProgramShape::kPositive;
  lie.seed = 123;
  lie.text = "O(x0) :- F(x0), !E(x0, x0).\n.output O\n";
  Result<Classification> c = ClassifyProgram(lie, ClassifyOptions{});
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_FALSE(c->record.conformant);
  bool fragment_caught = false, ladder_caught = false;
  for (const Divergence& d : c->divergences) {
    if (d.stage == "fragment") fragment_caught = true;
    if (d.stage == "ladder") ladder_caught = true;
  }
  EXPECT_TRUE(fragment_caught);
  EXPECT_TRUE(ladder_caught);

  // And through the survey entry point the control runs end to end.
  SurveyOptions o;
  o.programs = 0;
  o.inject_misclassification = true;
  Result<SurveyStats> stats = RunSurvey(o);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->control_caught);
}

TEST(FuzzerClassify, ConformantProgramHasCleanRecord) {
  FuzzerOptions fo;
  fo.seed = 5;
  fo.shape = ProgramShape::kSemiPositive;
  GeneratedProgram gp = GenerateProgram(fo);
  Result<Classification> c = ClassifyProgram(gp, ClassifyOptions{});
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  for (const Divergence& d : c->divergences) {
    ADD_FAILURE() << d.stage << ": " << d.detail;
  }
  EXPECT_TRUE(c->record.conformant);
  EXPECT_EQ(c->record.fragment, "SP-Datalog");
  EXPECT_EQ(c->record.strategy, "absence");
  EXPECT_GT(c->record.bsp_supersteps, 0u);
  EXPECT_EQ(c->record.ladder.rows.size(), 2u);
}

}  // namespace
}  // namespace calm::workload
