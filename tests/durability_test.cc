// The kill-anywhere crash-recovery harness (see DESIGN.md, "Durability and
// crash recovery"): a counting pass runs a durability workload crash-free
// and records how often every failpoint site fires; then, for each
// (site, hit) pair, a forked child arms the site, runs the same workload,
// dies there with _exit, and the parent recovers the child's directory and
// asserts the result is byte-identical to a state the crash-free oracle
// actually committed. Plus the snapshot round-trip matrix, torn-tail
// repair at every byte offset, sweep-checkpoint resume, and the durable
// inbox WAL.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/durable.h"
#include "base/failpoint.h"
#include "base/metrics.h"
#include "datalog/relstore.h"
#include "datalog/snapshot.h"
#include "monotonicity/checker.h"
#include "monotonicity/sweep_checkpoint.h"
#include "net/fault.h"
#include "queries/graph_queries.h"

namespace calm {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

// A fresh directory under the test temp root; unique per call.
std::string MakeTempDir() {
  static int n = 0;
  std::string dir =
      ::testing::TempDir() + "calm_durability_" + std::to_string(::getpid()) +
      "_" + std::to_string(n++);
  EXPECT_TRUE(durable::MakeDirs(dir).ok());
  return dir;
}

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

void WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

uint64_t CounterValue(const char* name) {
  return MetricRegistry::Global().GetCounter(name).Value();
}

// ---------------------------------------------------------------------------
// Snapshot round trips
// ---------------------------------------------------------------------------

// The pinned invariant: re-snapshotting a loaded database is byte-identical.
void ExpectSnapshotIdempotent(const datalog::Database& db) {
  const std::string dir = MakeTempDir();
  const std::string first = dir + "/a.snap";
  const std::string second = dir + "/b.snap";
  ASSERT_TRUE(datalog::WriteSnapshot(db, first).ok());
  Result<datalog::Database> loaded = datalog::LoadSnapshot(first);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(datalog::WriteSnapshot(*loaded, second).ok());
  std::string a, b;
  ASSERT_TRUE(ReadFileBytes(first, &a));
  ASSERT_TRUE(ReadFileBytes(second, &b));
  EXPECT_EQ(a, b);
}

TEST(SnapshotTest, EmptyDatabaseRoundTrips) {
  datalog::Database db;
  ExpectSnapshotIdempotent(db);
  const std::string path = MakeTempDir() + "/empty.snap";
  ASSERT_TRUE(datalog::WriteSnapshot(db, path).ok());
  Result<datalog::Database> loaded = datalog::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST(SnapshotTest, ZeroArityRelationRoundTrips) {
  datalog::Database db;
  const uint32_t flag = InternName("Flag");
  ASSERT_TRUE(db.Insert(flag, Tuple{}));
  ASSERT_FALSE(db.Insert(flag, Tuple{}));
  const std::string path = MakeTempDir() + "/zero.snap";
  ASSERT_TRUE(datalog::WriteSnapshot(db, path).ok());
  Result<datalog::Database> loaded = datalog::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->Contains(flag, Tuple{}));
  EXPECT_EQ(loaded->size(), 1u);
  ExpectSnapshotIdempotent(db);
}

TEST(SnapshotTest, WideTuplesSpillToOverflowAndRoundTrip) {
  datalog::Database db;
  const uint32_t wide = InternName("Wide");
  // Arity 6 exceeds the SoA inline width, exercising the overflow rows.
  const Tuple t1{V(1), V(2), V(3), V(4), V(5), V(6)};
  const Tuple t2{V(6), V(5), V(4), V(3), V(2), V(1)};
  ASSERT_TRUE(db.Insert(wide, t1));
  ASSERT_TRUE(db.Insert(wide, t2));
  const std::string path = MakeTempDir() + "/wide.snap";
  ASSERT_TRUE(datalog::WriteSnapshot(db, path).ok());
  Result<datalog::Database> loaded = datalog::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->Contains(wide, t1));
  EXPECT_TRUE(loaded->Contains(wide, t2));
  EXPECT_FALSE(loaded->Contains(wide, Tuple{V(9), V(9), V(9), V(9), V(9),
                                            V(9)}));
  ExpectSnapshotIdempotent(db);
}

TEST(SnapshotTest, DictRegrownAcrossEpochsRoundTrips) {
  datalog::Database db;
  const uint32_t e = InternName("E");
  ASSERT_TRUE(db.Insert(e, {Sym("alpha"), V(1)}));
  // Grow the dictionary inside an epoch, roll it back, then regrow with
  // different values — codes are reassigned, and the snapshot must capture
  // the dictionary as it stands, not as it ever was.
  db.BeginEpoch();
  ASSERT_TRUE(db.Insert(e, {Sym("ghost"), V(100)}));
  db.RollbackEpoch();
  ASSERT_TRUE(db.Insert(e, {Sym("beta"), V(2)}));
  ASSERT_TRUE(db.Insert(e, {Sym("alpha"), V(2)}));

  const std::string path = MakeTempDir() + "/epochs.snap";
  ASSERT_TRUE(datalog::WriteSnapshot(db, path).ok());
  Result<datalog::Database> loaded = datalog::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->Contains(e, {Sym("alpha"), V(1)}));
  EXPECT_TRUE(loaded->Contains(e, {Sym("beta"), V(2)}));
  EXPECT_TRUE(loaded->Contains(e, {Sym("alpha"), V(2)}));
  EXPECT_FALSE(loaded->Contains(e, {Sym("ghost"), V(100)}));
  EXPECT_EQ(loaded->size(), 3u);
  ExpectSnapshotIdempotent(db);
}

TEST(SnapshotTest, OpenEpochIsRejected) {
  datalog::Database db;
  db.BeginEpoch();
  Status s = datalog::WriteSnapshot(db, MakeTempDir() + "/epoch.snap");
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  db.RollbackEpoch();
}

TEST(SnapshotTest, TruncationAtEveryByteOffsetFailsCleanly) {
  datalog::Database db;
  const uint32_t e = InternName("E");
  ASSERT_TRUE(db.Insert(e, {Sym("node"), V(1)}));
  ASSERT_TRUE(db.Insert(e, {V(1), V(2)}));
  ASSERT_TRUE(db.Insert(InternName("Wide"),
                        {V(1), V(2), V(3), V(4), V(5), V(6)}));
  const std::string dir = MakeTempDir();
  const std::string full = dir + "/full.snap";
  ASSERT_TRUE(datalog::WriteSnapshot(db, full).ok());
  std::string bytes;
  ASSERT_TRUE(ReadFileBytes(full, &bytes));
  ASSERT_GT(bytes.size(), 16u);

  const std::string cut = dir + "/cut.snap";
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(cut, std::string_view(bytes).substr(0, len));
    Result<datalog::Database> r = datalog::LoadSnapshot(cut);
    EXPECT_FALSE(r.ok()) << "truncation at byte " << len
                         << " of " << bytes.size() << " loaded successfully";
  }
  // The untruncated file still loads (the loop never corrupted it).
  EXPECT_TRUE(datalog::LoadSnapshot(full).ok());
}

TEST(SnapshotTest, MissingAndForeignFilesAreRejected) {
  const std::string dir = MakeTempDir();
  Result<datalog::Database> missing = datalog::LoadSnapshot(dir + "/nope");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // A valid record file with a different client tag must not load.
  durable::FileWriter foreign("calm.other");
  foreign.Append("payload");
  ASSERT_TRUE(foreign.Commit(dir + "/foreign").ok());
  Result<datalog::Database> r = datalog::LoadSnapshot(dir + "/foreign");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// WAL torn tails
// ---------------------------------------------------------------------------

TEST(RecordFileTest, TornTailIsAPrefixAtEveryByteOffset) {
  const std::string dir = MakeTempDir();
  const std::string full = dir + "/full.wal";
  const std::vector<std::string> records = {"alpha", "bee", "gamma-gamma"};
  {
    durable::LogWriter wal;
    ASSERT_TRUE(wal.Open(full, "calm.test", nullptr).ok());
    for (const std::string& r : records) ASSERT_TRUE(wal.Append(r).ok());
  }
  std::string bytes;
  ASSERT_TRUE(ReadFileBytes(full, &bytes));

  size_t readable = 0;
  const std::string cut = dir + "/cut.wal";
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(cut, std::string_view(bytes).substr(0, len));
    Result<durable::ReadResult> r =
        durable::ReadRecordFile(cut, "calm.test", /*repair_torn_tail=*/false);
    if (!r.ok()) {
      // Only a header cut may make the file unreadable.
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
      continue;
    }
    ++readable;
    ASSERT_LE(r->records.size(), records.size());
    for (size_t i = 0; i < r->records.size(); ++i) {
      EXPECT_EQ(r->records[i], records[i]) << "at truncation " << len;
    }
    // Anything after the last full record is a torn tail.
    EXPECT_EQ(r->torn, r->valid_bytes != len);
  }
  EXPECT_GT(readable, 0u);
}

TEST(RecordFileTest, RepairedTornTailAcceptsNewAppends) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/resume.wal";
  {
    durable::LogWriter wal;
    ASSERT_TRUE(wal.Open(path, "calm.test", nullptr).ok());
    ASSERT_TRUE(wal.Append("kept").ok());
  }
  // Simulate a crash mid-append: garbage after the last durable record.
  std::string bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes));
  WriteFileBytes(path, bytes + "\x03\x00\x00\x00torn");

  std::vector<std::string> replayed;
  durable::LogWriter wal;
  ASSERT_TRUE(wal.Open(path, "calm.test", &replayed).ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], "kept");
  ASSERT_TRUE(wal.Append("after").ok());
  wal.Close();

  Result<durable::ReadResult> r =
      durable::ReadRecordFile(path, "calm.test", /*repair_torn_tail=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->torn);
  ASSERT_EQ(r->records.size(), 2u);
  EXPECT_EQ(r->records[1], "after");
}

// ---------------------------------------------------------------------------
// Kill-anywhere fuzzer
// ---------------------------------------------------------------------------

// The fuzzed workload: snapshot-commit A, three WAL appends, snapshot-commit
// C over A. Every failpoint site in the durability layer fires at least once
// (snapshot sites twice: two commits).
Status RunCrashWorkload(const std::string& dir) {
  datalog::Database db;
  const uint32_t e = InternName("E");
  db.Insert(e, {V(1), V(2)});
  db.Insert(e, {Sym("anchor"), V(3)});
  CALM_RETURN_IF_ERROR(datalog::WriteSnapshot(db, dir + "/state.snap"));

  durable::LogWriter wal;
  CALM_RETURN_IF_ERROR(wal.Open(dir + "/delta.wal", "calm.test", nullptr));
  for (const char* r : {"delta-0", "delta-1", "delta-2"}) {
    CALM_RETURN_IF_ERROR(wal.Append(r));
  }
  wal.Close();

  db.Insert(e, {V(3), V(1)});
  CALM_RETURN_IF_ERROR(datalog::WriteSnapshot(db, dir + "/state.snap"));
  return Status::Ok();
}

// Recovery oracle: after a crash anywhere in RunCrashWorkload,
//  * the snapshot is absent or byte-identical to committed state A or C
//    (and loads, and re-snapshots to the same bytes);
//  * the WAL is absent or replays to a prefix of the appended records;
//  * if state C is visible, every append had been acknowledged first.
void CheckRecovered(const std::string& dir, const std::string& oracle_a,
                    const std::string& oracle_c) {
  std::string snap;
  const bool have_snap = ReadFileBytes(dir + "/state.snap", &snap);
  if (have_snap) {
    EXPECT_TRUE(snap == oracle_a || snap == oracle_c)
        << "recovered snapshot matches no committed state";
    Result<datalog::Database> db = datalog::LoadSnapshot(dir + "/state.snap");
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    const std::string again = dir + "/again.snap";
    ASSERT_TRUE(datalog::WriteSnapshot(*db, again).ok());
    std::string rewritten;
    ASSERT_TRUE(ReadFileBytes(again, &rewritten));
    EXPECT_EQ(rewritten, snap);
  }

  const std::vector<std::string> expected = {"delta-0", "delta-1", "delta-2"};
  Result<durable::ReadResult> wal = durable::ReadRecordFile(
      dir + "/delta.wal", "calm.test", /*repair_torn_tail=*/true);
  if (!wal.ok()) {
    EXPECT_EQ(wal.status().code(), StatusCode::kNotFound);
    EXPECT_TRUE(!have_snap || snap == oracle_a)
        << "WAL missing after the second snapshot committed";
    return;
  }
  ASSERT_LE(wal->records.size(), expected.size());
  for (size_t i = 0; i < wal->records.size(); ++i) {
    EXPECT_EQ(wal->records[i], expected[i]);
  }
  if (have_snap && snap == oracle_c) {
    EXPECT_EQ(wal->records.size(), expected.size())
        << "acknowledged append lost although a later commit survived";
  }
  // The repaired log accepts appends — recovery leaves a live WAL.
  std::vector<std::string> replayed;
  durable::LogWriter resume;
  ASSERT_TRUE(resume.Open(dir + "/delta.wal", "calm.test", &replayed).ok());
  EXPECT_EQ(replayed.size(), wal->records.size());
  EXPECT_TRUE(resume.Append("post-crash").ok());
}

TEST(KillAnywhereTest, EveryCrashSiteRecoversToACommittedState) {
  if (!failpoint::FailpointsCompiledIn()) {
    GTEST_SKIP() << "built with CALM_FAILPOINTS=OFF";
  }
  // Counting pass: the crash-free oracle, recording per-site hit counts.
  failpoint::SetCounting(true);
  const std::string oracle_dir = MakeTempDir();
  const Status oracle_status = RunCrashWorkload(oracle_dir);
  const std::vector<std::pair<std::string, uint64_t>> counts =
      failpoint::HitCounts();
  failpoint::SetCounting(false);
  ASSERT_TRUE(oracle_status.ok()) << oracle_status.ToString();
  ASSERT_FALSE(counts.empty());

  // The two committed snapshot states: A (before the WAL) and C (final).
  std::string oracle_c;
  ASSERT_TRUE(ReadFileBytes(oracle_dir + "/state.snap", &oracle_c));
  std::string oracle_a;
  {
    datalog::Database db;
    const uint32_t e = InternName("E");
    db.Insert(e, {V(1), V(2)});
    db.Insert(e, {Sym("anchor"), V(3)});
    const std::string a_path = MakeTempDir() + "/a.snap";
    ASSERT_TRUE(datalog::WriteSnapshot(db, a_path).ok());
    ASSERT_TRUE(ReadFileBytes(a_path, &oracle_a));
  }
  ASSERT_NE(oracle_a, oracle_c);

  size_t crash_points = 0;
  for (const auto& [site, hits] : counts) {
    for (uint64_t hit = 1; hit <= hits; ++hit) {
      SCOPED_TRACE(site + ":" + std::to_string(hit));
      const std::string dir = MakeTempDir();
      const pid_t pid = ::fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        // Child: die at the armed boundary; any other exit is a test bug.
        failpoint::Arm(site, hit);
        const Status s = RunCrashWorkload(dir);
        ::_exit(s.ok() ? 7 : 8);
      }
      int wstatus = 0;
      ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
      ASSERT_TRUE(WIFEXITED(wstatus));
      ASSERT_EQ(WEXITSTATUS(wstatus), failpoint::kCrashExitCode)
          << "armed site did not fire (or workload failed before it)";
      CheckRecovered(dir, oracle_a, oracle_c);
      ++crash_points;
    }
  }
  // 2 snapshot commits x 4 sites, 1 WAL creation x 4, 3 appends x 3.
  EXPECT_GE(crash_points, 21u);
}

// ---------------------------------------------------------------------------
// Sweep checkpoint resume
// ---------------------------------------------------------------------------

monotonicity::ExhaustiveOptions SmallSweep(const std::string& checkpoint_dir) {
  monotonicity::ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 2;
  o.fresh_values = 2;
  o.max_facts_j = 2;
  o.threads = 1;  // keep this process fork-safe
  o.checkpoint_dir = checkpoint_dir;
  return o;
}

TEST(SweepCheckpointTest, FileIdSanitizesQueryNames) {
  EXPECT_EQ(monotonicity::SweepFileId("a b/c.q", "fv", "M", 3, 2, 1, 4),
            "a_b_c_q-fv-M-d3f2i1j4");
}

TEST(SweepCheckpointTest, RerunShortCircuitsToTheRecordedVerdict) {
  SetMetricsEnabled(true);
  auto q = queries::MakeStarQuery(2);  // not monotone: has a counterexample
  const std::string dir = MakeTempDir();

  Result<std::optional<monotonicity::Counterexample>> first =
      monotonicity::FindViolation(*q, monotonicity::MonotonicityClass::kMonotone,
                                  SmallSweep(dir));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->has_value());

  const uint64_t resumes_before = CounterValue("calm.durable.sweep_resumes");
  Result<std::optional<monotonicity::Counterexample>> second =
      monotonicity::FindViolation(*q, monotonicity::MonotonicityClass::kMonotone,
                                  SmallSweep(dir));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_TRUE(second->has_value());
  // Identical verdict, witness, and stop point.
  EXPECT_EQ(second->value().ToString(), first->value().ToString());
  EXPECT_GT(CounterValue("calm.durable.sweep_resumes"), resumes_before);
}

TEST(SweepCheckpointTest, CheckpointedNoViolationVerdictIsStable) {
  auto q = queries::MakeTransitiveClosure();  // monotone: full sweep
  const std::string dir = MakeTempDir();
  for (int run = 0; run < 2; ++run) {
    Result<std::optional<monotonicity::Counterexample>> r =
        monotonicity::FindViolation(
            *q, monotonicity::MonotonicityClass::kMonotone, SmallSweep(dir));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->has_value()) << "run " << run;
  }
}

TEST(SweepCheckpointTest, KilledSweepResumesToTheOracleVerdict) {
  if (!failpoint::FailpointsCompiledIn()) {
    GTEST_SKIP() << "built with CALM_FAILPOINTS=OFF";
  }
  SetMetricsEnabled(true);
  auto q = queries::MakeStarQuery(2);
  const auto cls = monotonicity::MonotonicityClass::kMonotone;

  // Crash-free oracle verdict, no checkpoint.
  Result<std::optional<monotonicity::Counterexample>> oracle =
      monotonicity::FindViolation(*q, cls, SmallSweep(""));
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(oracle->has_value());

  // Count how many durable records a checkpointed run writes.
  failpoint::SetCounting(true);
  Result<std::optional<monotonicity::Counterexample>> counted =
      monotonicity::FindViolation(*q, cls, SmallSweep(MakeTempDir()));
  const std::vector<std::pair<std::string, uint64_t>> counts =
      failpoint::HitCounts();
  failpoint::SetCounting(false);
  ASSERT_TRUE(counted.ok());
  uint64_t synced = 0;
  for (const auto& [site, hits] : counts) {
    if (site == "durable.wal.synced") synced = hits;
  }
  ASSERT_GT(synced, 2u) << "sweep journaled too little to kill mid-way";

  // Kill a child roughly half-way through the journal.
  const std::string dir = MakeTempDir();
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    failpoint::Arm("durable.wal.synced", synced / 2 + 1);
    Result<std::optional<monotonicity::Counterexample>> r =
        monotonicity::FindViolation(*q, cls, SmallSweep(dir));
    ::_exit(r.ok() ? 7 : 8);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), failpoint::kCrashExitCode);

  // Resume in this process: identical verdict, and the child's durable
  // progress is actually skipped, not recomputed.
  const uint64_t skipped_before = CounterValue("calm.durable.sweep_skipped");
  const uint64_t resumes_before = CounterValue("calm.durable.sweep_resumes");
  Result<std::optional<monotonicity::Counterexample>> resumed =
      monotonicity::FindViolation(*q, cls, SmallSweep(dir));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE(resumed->has_value());
  EXPECT_EQ(resumed->value().ToString(), oracle->value().ToString());
  EXPECT_GT(CounterValue("calm.durable.sweep_resumes"), resumes_before);
  EXPECT_GT(CounterValue("calm.durable.sweep_skipped"), skipped_before);
}

TEST(SweepCheckpointTest, MismatchedSpaceSizeIsRejected) {
  const std::string dir = MakeTempDir();
  {
    Result<std::unique_ptr<monotonicity::SweepCheckpoint>> ckpt =
        monotonicity::SweepCheckpoint::Open(dir, "sweep", 10);
    ASSERT_TRUE(ckpt.ok());
    (*ckpt)->RecordDone(3);
    ASSERT_TRUE((*ckpt)->io_status().ok());
  }
  Result<std::unique_ptr<monotonicity::SweepCheckpoint>> reopened =
      monotonicity::SweepCheckpoint::Open(dir, "sweep", 10);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->IsRecorded(3));
  EXPECT_EQ((*reopened)->recorded_count(), 1u);

  Result<std::unique_ptr<monotonicity::SweepCheckpoint>> skewed =
      monotonicity::SweepCheckpoint::Open(dir, "sweep", 11);
  EXPECT_EQ(skewed.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Durable inboxes (net/fault.h)
// ---------------------------------------------------------------------------

TEST(DurableInboxTest, InboxesSurviveAProcessRestart) {
  const std::string dir = MakeTempDir();
  {
    net::FaultPlan plan = net::FaultPlan::Scripted({});
    plan.EnableDurableInboxes(dir);
    plan.BindNetwork(2);
    Instance facts;
    facts.Insert(Fact("M", {V(1)}));
    facts.Insert(Fact("M", {V(2)}));
    plan.OnDeliver(0, facts);
    plan.OnDeliver(0, facts);  // redelivery: set semantics, no new records
    Instance other;
    other.Insert(Fact("M", {V(3)}));
    plan.OnDeliver(1, other);
    ASSERT_TRUE(plan.durable_status().ok())
        << plan.durable_status().ToString();
  }
  // Exactly one record per distinct fact, despite the redelivery.
  Result<durable::ReadResult> wal = durable::ReadRecordFile(
      dir + "/inbox-0.wal", "calm.inbox", /*repair_torn_tail=*/false);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(wal->records.size(), 2u);

  // "Restart": a fresh plan over the same directory replays the inboxes.
  net::FaultPlan plan = net::FaultPlan::Scripted({});
  plan.EnableDurableInboxes(dir);
  plan.BindNetwork(2);
  ASSERT_TRUE(plan.durable_status().ok()) << plan.durable_status().ToString();
  EXPECT_TRUE(plan.InboxOf(0).Contains(Fact("M", {V(1)})));
  EXPECT_TRUE(plan.InboxOf(0).Contains(Fact("M", {V(2)})));
  EXPECT_EQ(plan.InboxOf(0).size(), 2u);
  EXPECT_TRUE(plan.InboxOf(1).Contains(Fact("M", {V(3)})));
  EXPECT_EQ(plan.InboxOf(1).size(), 1u);
}

TEST(DurableInboxTest, TornInboxTailIsRepairedOnRebind) {
  const std::string dir = MakeTempDir();
  {
    net::FaultPlan plan = net::FaultPlan::Scripted({});
    plan.EnableDurableInboxes(dir);
    plan.BindNetwork(1);
    Instance facts;
    facts.Insert(Fact("M", {V(7)}));
    plan.OnDeliver(0, facts);
    ASSERT_TRUE(plan.durable_status().ok());
  }
  // A crash mid-append leaves trailing garbage.
  std::string bytes;
  ASSERT_TRUE(ReadFileBytes(dir + "/inbox-0.wal", &bytes));
  WriteFileBytes(dir + "/inbox-0.wal", bytes + "\x09\x00torn!");

  net::FaultPlan plan = net::FaultPlan::Scripted({});
  plan.EnableDurableInboxes(dir);
  plan.BindNetwork(1);
  ASSERT_TRUE(plan.durable_status().ok()) << plan.durable_status().ToString();
  EXPECT_TRUE(plan.InboxOf(0).Contains(Fact("M", {V(7)})));
  EXPECT_EQ(plan.InboxOf(0).size(), 1u);
  // Appends resume cleanly after the repair.
  Instance more;
  more.Insert(Fact("M", {V(8)}));
  plan.OnDeliver(0, more);
  ASSERT_TRUE(plan.durable_status().ok());
  Result<durable::ReadResult> wal = durable::ReadRecordFile(
      dir + "/inbox-0.wal", "calm.inbox", /*repair_torn_tail=*/false);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->records.size(), 2u);
  EXPECT_FALSE(wal->torn);
}

}  // namespace
}  // namespace calm
