#include "datalog/relstore.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/fact.h"
#include "base/schema.h"

namespace calm::datalog {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

TEST(RelStoreTest, InsertDeduplicates) {
  RelStore store;
  EXPECT_TRUE(store.Insert({V(1), V(2)}));
  EXPECT_FALSE(store.Insert({V(1), V(2)}));
  EXPECT_TRUE(store.Insert({V(2), V(1)}));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains({V(1), V(2)}));
  EXPECT_FALSE(store.Contains({V(3), V(4)}));
}

TEST(RelStoreTest, KeyOfExtractsMaskedPositions) {
  Tuple t{V(10), V(20), V(30)};
  EXPECT_EQ(RelStore::KeyOf(t, 0b001), (Tuple{V(10)}));
  EXPECT_EQ(RelStore::KeyOf(t, 0b100), (Tuple{V(30)}));
  EXPECT_EQ(RelStore::KeyOf(t, 0b101), (Tuple{V(10), V(30)}));
  EXPECT_EQ(RelStore::KeyOf(t, 0b111), t);
}

TEST(RelStoreTest, ProbeSinglePosition) {
  RelStore store;
  store.Insert({V(1), V(2)});
  store.Insert({V(1), V(3)});
  store.Insert({V(2), V(3)});
  // Position 0 bound to 1: rows 0 and 1, in insertion order.
  const std::vector<uint32_t>& rows = store.Probe(0b01, Tuple{V(1)});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 0u);
  EXPECT_EQ(rows[1], 1u);
  // Position 1 bound to 3: rows 1 and 2.
  const std::vector<uint32_t>& rows2 = store.Probe(0b10, Tuple{V(3)});
  ASSERT_EQ(rows2.size(), 2u);
  EXPECT_EQ(rows2[0], 1u);
  EXPECT_EQ(rows2[1], 2u);
  EXPECT_TRUE(store.Probe(0b01, Tuple{V(9)}).empty());
}

TEST(RelStoreTest, ProbeAllPositionsActsAsPointLookup) {
  RelStore store;
  store.Insert({V(1), V(2), V(3)});
  store.Insert({V(1), V(2), V(4)});
  const std::vector<uint32_t>& rows =
      store.Probe(0b111, Tuple{V(1), V(2), V(4)});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 1u);
}

TEST(RelStoreTest, ProbeDistinguishesRepeatedValues) {
  // The key for mask 0b11 on E(x, x) vs E(x, y) differs even though the
  // evaluator's repeated-variable rules (O(x) :- E(x, x)) probe with the
  // same value twice.
  RelStore store;
  store.Insert({V(1), V(1)});
  store.Insert({V(1), V(2)});
  store.Insert({V(2), V(2)});
  const std::vector<uint32_t>& diag = store.Probe(0b11, Tuple{V(1), V(1)});
  ASSERT_EQ(diag.size(), 1u);
  EXPECT_EQ(diag[0], 0u);
  const std::vector<uint32_t>& off = store.Probe(0b11, Tuple{V(1), V(2)});
  ASSERT_EQ(off.size(), 1u);
  EXPECT_EQ(off[0], 1u);
}

TEST(RelStoreTest, ProbeIndexExtendsIncrementally) {
  RelStore store;
  store.Insert({V(1), V(2)});
  EXPECT_EQ(store.Probe(0b01, Tuple{V(1)}).size(), 1u);
  // Inserting after the first probe must extend the already-built index.
  store.Insert({V(1), V(3)});
  store.Insert({V(4), V(5)});
  EXPECT_EQ(store.Probe(0b01, Tuple{V(1)}).size(), 2u);
  EXPECT_EQ(store.Probe(0b01, Tuple{V(4)}).size(), 1u);
}

TEST(RelStoreTest, GrowthPastLoadFactorKeepsEverythingFindable) {
  RelStore store;
  constexpr uint64_t kN = 500;  // forces several dedup/index table doublings
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(store.Insert({V(i), V(i % 7)}));
  }
  EXPECT_EQ(store.size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_TRUE(store.Contains({V(i), V(i % 7)}));
    ASSERT_EQ(store.Probe(0b01, Tuple{V(i)}).size(), 1u);
  }
  // Each residue class mod 7 collects ~kN/7 rows under the position-1 index.
  size_t total = 0;
  for (uint64_t r = 0; r < 7; ++r) {
    total += store.Probe(0b10, Tuple{V(r)}).size();
  }
  EXPECT_EQ(total, kN);
}

TEST(RelStoreTest, ClearResetsIndexesForReuse) {
  RelStore store;
  store.Insert({V(1), V(2)});
  store.Insert({V(1), V(3)});
  EXPECT_EQ(store.Probe(0b01, Tuple{V(1)}).size(), 2u);

  // After clear (the scratch-reuse path), stale rows must not resurface.
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.Contains({V(1), V(2)}));
  EXPECT_TRUE(store.Probe(0b01, Tuple{V(1)}).empty());

  store.Insert({V(1), V(9)});
  const std::vector<uint32_t>& rows = store.Probe(0b01, Tuple{V(1)});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 0u);
}

TEST(DatabaseTest, ResetKeepsRelationsButDropsFacts) {
  Database db;
  uint32_t e = InternName("E");
  uint32_t s = InternName("S");
  EXPECT_TRUE(db.Insert(e, {V(1), V(2)}));
  EXPECT_TRUE(db.Insert(s, {V(3)}));
  EXPECT_EQ(db.size(), 2u);

  db.Reset();
  EXPECT_EQ(db.size(), 0u);
  EXPECT_FALSE(db.Contains(e, {V(1), V(2)}));
  EXPECT_TRUE(db.Insert(e, {V(1), V(2)}));
  EXPECT_EQ(db.size(), 1u);
}

TEST(DatabaseTest, ToInstanceRestrictsLikeInstanceRestrict) {
  Database db(Instance{Fact("E", {V(1), V(2)}), Fact("S", {V(3)}),
                       Fact("T", {V(4), V(5)})});
  Schema schema({{"E", 2}, {"S", 1}});

  Instance full = db.ToInstance();
  EXPECT_EQ(full.size(), 3u);
  EXPECT_EQ(db.ToInstance(&schema), full.Restrict(schema));
}

// --- Columnar edge cases --------------------------------------------------

TEST(RelStoreTest, ZeroArityRelationHoldsAtMostOneRow) {
  RelStore store;
  EXPECT_TRUE(store.Insert(Tuple{}));
  EXPECT_FALSE(store.Insert(Tuple{}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.arity(), 0);
  EXPECT_TRUE(store.Contains(Tuple{}));

  size_t seen = 0;
  store.ForEachTuple([&](const Tuple& t) {
    ++seen;
    EXPECT_TRUE(t.empty());
  });
  EXPECT_EQ(seen, 1u);

  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.Contains(Tuple{}));
  EXPECT_TRUE(store.Insert(Tuple{}));
  EXPECT_EQ(store.size(), 1u);
}

TEST(RelStoreTest, DictionarySurvivesClearAndKeepsCodesStable) {
  RelStore store;
  store.Insert({V(1), V(2)});
  store.Insert({V(3), V(4)});
  const size_t dict_after_first_fill = store.DictSize();
  EXPECT_EQ(dict_after_first_fill, 4u);

  store.clear();
  EXPECT_EQ(store.size(), 0u);
  // The dictionary keeps its interned values across clear() (scratch reuse
  // re-interns nothing)...
  EXPECT_EQ(store.DictSize(), dict_after_first_fill);

  // ...and re-inserting known values grows nothing, while new values extend
  // the same dictionary.
  store.Insert({V(1), V(2)});
  EXPECT_EQ(store.DictSize(), dict_after_first_fill);
  store.Insert({V(5), V(1)});
  EXPECT_EQ(store.DictSize(), dict_after_first_fill + 1);

  // Row numbering restarted: dedup and probes see only post-clear rows.
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.Contains({V(3), V(4)}));
  const std::vector<uint32_t>& rows = store.Probe(0b01, Tuple{V(1)});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 0u);
}

TEST(RelStoreTest, PreparedProbeIndexExtendsAcrossDeltaMerges) {
  // Semi-naive shape: an index prepared at round start must not see rows a
  // later merge appended (the executor's visibility horizon relies on a
  // frozen `upto`), and the next PrepareProbe must fold the delta in.
  RelStore store;
  store.Insert({V(1), V(10)});
  store.Insert({V(2), V(20)});
  store.Insert({V(1), V(30)});

  const RelStore::MaskIndex& index = store.PrepareProbe(0b01);
  uint32_t key[] = {0};  // codes are dense: V(1) interned first -> code 0
  ASSERT_EQ(store.CodeAt(0, 0), key[0]);
  {
    const std::vector<uint32_t>& hits = store.ProbePrepared(index, key);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0], 0u);
    EXPECT_EQ(hits[1], 2u);
  }

  // Delta merge: new matching rows appended after the prepare are invisible
  // through the already-prepared handle...
  store.Insert({V(1), V(40)});
  {
    const std::vector<uint32_t>& hits = store.ProbePrepared(index, key);
    EXPECT_EQ(hits.size(), 2u);
  }

  // ...and visible, in ascending row order, after the next PrepareProbe.
  const RelStore::MaskIndex& extended = store.PrepareProbe(0b01);
  {
    const std::vector<uint32_t>& hits = store.ProbePrepared(extended, key);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[2], 3u);
  }

  // A second mask on the same store indexes independently and folds in all
  // rows present at its first prepare.
  const RelStore::MaskIndex& by_second = store.PrepareProbe(0b10);
  uint32_t key40[] = {store.CodeAt(3, 1)};
  const std::vector<uint32_t>& hits = store.ProbePrepared(by_second, key40);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 3u);
}

TEST(RelStoreTest, WideTuplesRoundTripThroughColumns) {
  // Arity 6 exceeds Tuple's inline capacity, so these rows exercise the
  // spilled (heap-backed) Tuple representation on both insert and
  // materialize.
  RelStore store;
  Tuple wide1{V(1), V(2), V(3), V(4), V(5), V(6)};
  Tuple wide2{V(1), V(2), V(3), V(4), V(5), V(7)};
  EXPECT_TRUE(store.Insert(wide1));
  EXPECT_TRUE(store.Insert(wide2));
  EXPECT_FALSE(store.Insert(wide1));
  EXPECT_EQ(store.arity(), 6);
  EXPECT_TRUE(store.Contains(wide1));
  EXPECT_FALSE(store.Contains({V(9), V(2), V(3), V(4), V(5), V(6)}));

  Tuple out;
  store.MaterializeRow(0, &out);
  EXPECT_EQ(out, wide1);
  store.MaterializeRow(1, &out);
  EXPECT_EQ(out, wide2);

  // Multi-column probes hash the packed key across spilled-width rows.
  const std::vector<uint32_t>& rows =
      store.Probe(0b011111, Tuple{V(1), V(2), V(3), V(4), V(5)});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 0u);
  EXPECT_EQ(rows[1], 1u);

  const std::vector<uint32_t>& last =
      store.Probe(0b100000, Tuple{V(7)});
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0], 1u);
}

TEST(DatabaseTest, WideAndInlineTuplesRoundTripToInstance) {
  Instance in{Fact("W", {V(1), V(2), V(3), V(4), V(5), V(6)}),
              Fact("W", {V(0), V(2), V(3), V(4), V(5), V(6)}),
              Fact("E", {V(1), V(2)})};
  Database db(in);
  EXPECT_EQ(db.ToInstance(), in);
}

TEST(RelStoreTest, MixedArityOverflowKeepsContainsAndSize) {
  // Schema-free round-trips can feed one relation tuples of two arities;
  // the columnar rows keep the first arity and stragglers overflow.
  RelStore store;
  EXPECT_TRUE(store.Insert({V(1), V(2)}));
  EXPECT_TRUE(store.Insert({V(1), V(2), V(3)}));
  EXPECT_FALSE(store.Insert({V(1), V(2), V(3)}));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.overflow_count(), 1u);
  EXPECT_TRUE(store.Contains({V(1), V(2)}));
  EXPECT_TRUE(store.Contains({V(1), V(2), V(3)}));

  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.overflow_count(), 0u);
  EXPECT_FALSE(store.Contains({V(1), V(2), V(3)}));
}

// --- Epoch rollback -------------------------------------------------------

TEST(RelStoreTest, TruncateRowsUnwindsDedupAndIndexes) {
  RelStore store;
  store.Insert({V(1), V(2)});
  store.Insert({V(2), V(3)});
  EXPECT_EQ(store.Probe(0b01, Tuple{V(1)}).size(), 1u);  // build an index
  store.Insert({V(1), V(4)});
  store.Insert({V(3), V(4)});
  EXPECT_EQ(store.Probe(0b01, Tuple{V(1)}).size(), 2u);  // extend it

  store.TruncateRows(2);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains({V(1), V(2)}));
  EXPECT_TRUE(store.Contains({V(2), V(3)}));
  // The removed rows are gone from dedup (reinsertable) and the index.
  EXPECT_FALSE(store.Contains({V(1), V(4)}));
  EXPECT_FALSE(store.Contains({V(3), V(4)}));
  EXPECT_EQ(store.Probe(0b01, Tuple{V(1)}).size(), 1u);
  EXPECT_TRUE(store.Probe(0b01, Tuple{V(3)}).empty());
  EXPECT_TRUE(store.Insert({V(1), V(4)}));
  EXPECT_EQ(store.Probe(0b01, Tuple{V(1)}).size(), 2u);
}

TEST(RelStoreTest, TruncateRowsSurvivesTableGrowthAndCollisions) {
  // Enough rows to force several dedup-table doublings, then a rollback
  // across the growth boundary: every surviving row must stay findable
  // (backward-shift deletion must not break probe chains).
  RelStore store;
  constexpr uint64_t kN = 400;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(store.Insert({V(i), V(i % 5)}));
  }
  EXPECT_EQ(store.Probe(0b10, Tuple{V(0)}).size(), kN / 5);
  store.TruncateRows(37);
  EXPECT_EQ(store.size(), 37u);
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(store.Contains({V(i), V(i % 5)}), i < 37) << i;
  }
  EXPECT_EQ(store.Probe(0b10, Tuple{V(0)}).size(), 8u);  // 0,5,...,35
  // Reinsert everything: dedup slots freed by the rollback are reusable.
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(store.Insert({V(i), V(i % 5)}), i >= 37) << i;
  }
  EXPECT_EQ(store.size(), kN);
}

TEST(RelStoreTest, TruncateRowsWideArity) {
  RelStore store;
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Insert({V(i), V(i + 1), V(i + 2), V(i % 3)}));
  }
  EXPECT_EQ(store.Probe(0b1000, Tuple{V(0)}).size(), 17u);
  store.TruncateRows(10);
  EXPECT_EQ(store.size(), 10u);
  EXPECT_TRUE(store.Contains({V(9), V(10), V(11), V(0)}));
  EXPECT_FALSE(store.Contains({V(10), V(11), V(12), V(1)}));
  EXPECT_EQ(store.Probe(0b1000, Tuple{V(0)}).size(), 4u);  // i = 0,3,6,9
  EXPECT_TRUE(store.Insert({V(10), V(11), V(12), V(1)}));
}

TEST(DatabaseTest, EpochRollbackRestoresStoresDictAndIndexes) {
  Database db;
  const uint32_t e = InternName("E");
  const uint32_t s = InternName("S");
  db.Insert(e, {V(1), V(2)});
  db.Insert(s, {V(3)});
  ASSERT_EQ(db.Store(e)->Probe(0b01, Tuple{V(1)}).size(), 1u);
  const size_t dict_before = db.dict().size();
  const Instance before = db.ToInstance();

  db.BeginEpoch();
  EXPECT_EQ(db.EpochDepth(), 1u);
  db.Insert(e, {V(7), V(8)});               // new values -> dict growth
  db.Insert(s, {V(1)});
  db.Insert(InternName("NEW"), {V(9)});     // store created mid-epoch
  ASSERT_EQ(db.Store(e)->Probe(0b01, Tuple{V(7)}).size(), 1u);
  EXPECT_GT(db.dict().size(), dict_before);

  db.RollbackEpoch();
  EXPECT_EQ(db.EpochDepth(), 0u);
  EXPECT_EQ(db.ToInstance(), before);
  EXPECT_EQ(db.dict().size(), dict_before);
  EXPECT_EQ(db.Store(InternName("NEW")), nullptr);
  EXPECT_FALSE(db.Contains(e, {V(7), V(8)}));
  EXPECT_TRUE(db.Store(e)->Probe(0b01, Tuple{V(7)}).empty());
  ASSERT_EQ(db.Store(e)->Probe(0b01, Tuple{V(1)}).size(), 1u);

  // Rolled-back values re-intern cleanly and the store accepts the rows
  // again (dedup slots were really freed).
  EXPECT_TRUE(db.Insert(e, {V(7), V(8)}));
  EXPECT_EQ(db.dict().size(), dict_before + 2);
}

TEST(DatabaseTest, NestedEpochsRollBackIndependently) {
  Database db;
  const uint32_t e = InternName("E");
  db.Insert(e, {V(1), V(2)});

  db.BeginEpoch();
  db.Insert(e, {V(3), V(4)});
  const Instance at_depth1 = db.ToInstance();

  db.BeginEpoch();
  db.Insert(e, {V(5), V(6)});
  EXPECT_EQ(db.EpochDepth(), 2u);
  db.RollbackEpoch();
  EXPECT_EQ(db.ToInstance(), at_depth1);
  EXPECT_TRUE(db.Contains(e, {V(3), V(4)}));
  EXPECT_FALSE(db.Contains(e, {V(5), V(6)}));

  db.RollbackEpoch();
  EXPECT_EQ(db.EpochDepth(), 0u);
  EXPECT_FALSE(db.Contains(e, {V(3), V(4)}));
  EXPECT_TRUE(db.Contains(e, {V(1), V(2)}));
}

TEST(DatabaseTest, EpochRollbackRemovesStoreWhoseArityWasFixedInEpoch) {
  // A store created before the epoch but still empty (arity -1) may get its
  // arity fixed by the first insert inside the epoch; rollback must return
  // it to the pristine shell.
  Database db;
  const uint32_t e = InternName("E");
  db.EnsureStores({e});
  ASSERT_NE(db.Store(e), nullptr);
  EXPECT_EQ(db.Store(e)->arity(), -1);

  db.BeginEpoch();
  db.Insert(e, {V(1), V(2), V(3)});
  EXPECT_EQ(db.Store(e)->arity(), 3);
  db.RollbackEpoch();
  ASSERT_NE(db.Store(e), nullptr);
  EXPECT_EQ(db.Store(e)->arity(), -1);
  EXPECT_EQ(db.Store(e)->size(), 0u);
  // And the store is reusable at a different arity afterwards.
  EXPECT_TRUE(db.Insert(e, {V(1), V(2)}));
  EXPECT_EQ(db.Store(e)->arity(), 2);
}

TEST(RelStoreTest, RollbackToRestoresOverflowAndArityZero) {
  RelStore store;
  store.Insert({V(1), V(2)});
  store.Insert({V(1), V(2), V(3)});  // overflow straggler
  const RelStore::Mark mark = store.MarkNow();
  store.Insert({V(4), V(5), V(6)});
  store.Insert({V(7), V(8)});
  store.RollbackTo(mark);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains({V(1), V(2), V(3)}));
  EXPECT_FALSE(store.Contains({V(4), V(5), V(6)}));
  EXPECT_FALSE(store.Contains({V(7), V(8)}));

  RelStore nullary;
  const RelStore::Mark m0 = nullary.MarkNow();  // arity still -1
  nullary.Insert(Tuple{});
  nullary.RollbackTo(m0);
  EXPECT_EQ(nullary.size(), 0u);
  EXPECT_FALSE(nullary.Contains(Tuple{}));
  EXPECT_TRUE(nullary.Insert(Tuple{}));
  const RelStore::Mark m1 = nullary.MarkNow();
  nullary.RollbackTo(m1);  // nothing inserted since: no-op
  EXPECT_TRUE(nullary.Contains(Tuple{}));
}

}  // namespace
}  // namespace calm::datalog
