#include "datalog/relstore.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/fact.h"
#include "base/schema.h"

namespace calm::datalog {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

TEST(RelStoreTest, InsertDeduplicates) {
  RelStore store;
  EXPECT_TRUE(store.Insert({V(1), V(2)}));
  EXPECT_FALSE(store.Insert({V(1), V(2)}));
  EXPECT_TRUE(store.Insert({V(2), V(1)}));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains({V(1), V(2)}));
  EXPECT_FALSE(store.Contains({V(3), V(4)}));
}

TEST(RelStoreTest, KeyOfExtractsMaskedPositions) {
  Tuple t{V(10), V(20), V(30)};
  EXPECT_EQ(RelStore::KeyOf(t, 0b001), (Tuple{V(10)}));
  EXPECT_EQ(RelStore::KeyOf(t, 0b100), (Tuple{V(30)}));
  EXPECT_EQ(RelStore::KeyOf(t, 0b101), (Tuple{V(10), V(30)}));
  EXPECT_EQ(RelStore::KeyOf(t, 0b111), t);
}

TEST(RelStoreTest, ProbeSinglePosition) {
  RelStore store;
  store.Insert({V(1), V(2)});
  store.Insert({V(1), V(3)});
  store.Insert({V(2), V(3)});
  // Position 0 bound to 1: rows 0 and 1, in insertion order.
  const std::vector<uint32_t>& rows = store.Probe(0b01, Tuple{V(1)});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 0u);
  EXPECT_EQ(rows[1], 1u);
  // Position 1 bound to 3: rows 1 and 2.
  const std::vector<uint32_t>& rows2 = store.Probe(0b10, Tuple{V(3)});
  ASSERT_EQ(rows2.size(), 2u);
  EXPECT_EQ(rows2[0], 1u);
  EXPECT_EQ(rows2[1], 2u);
  EXPECT_TRUE(store.Probe(0b01, Tuple{V(9)}).empty());
}

TEST(RelStoreTest, ProbeAllPositionsActsAsPointLookup) {
  RelStore store;
  store.Insert({V(1), V(2), V(3)});
  store.Insert({V(1), V(2), V(4)});
  const std::vector<uint32_t>& rows =
      store.Probe(0b111, Tuple{V(1), V(2), V(4)});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 1u);
}

TEST(RelStoreTest, ProbeDistinguishesRepeatedValues) {
  // The key for mask 0b11 on E(x, x) vs E(x, y) differs even though the
  // evaluator's repeated-variable rules (O(x) :- E(x, x)) probe with the
  // same value twice.
  RelStore store;
  store.Insert({V(1), V(1)});
  store.Insert({V(1), V(2)});
  store.Insert({V(2), V(2)});
  const std::vector<uint32_t>& diag = store.Probe(0b11, Tuple{V(1), V(1)});
  ASSERT_EQ(diag.size(), 1u);
  EXPECT_EQ(diag[0], 0u);
  const std::vector<uint32_t>& off = store.Probe(0b11, Tuple{V(1), V(2)});
  ASSERT_EQ(off.size(), 1u);
  EXPECT_EQ(off[0], 1u);
}

TEST(RelStoreTest, ProbeIndexExtendsIncrementally) {
  RelStore store;
  store.Insert({V(1), V(2)});
  EXPECT_EQ(store.Probe(0b01, Tuple{V(1)}).size(), 1u);
  // Inserting after the first probe must extend the already-built index.
  store.Insert({V(1), V(3)});
  store.Insert({V(4), V(5)});
  EXPECT_EQ(store.Probe(0b01, Tuple{V(1)}).size(), 2u);
  EXPECT_EQ(store.Probe(0b01, Tuple{V(4)}).size(), 1u);
}

TEST(RelStoreTest, GrowthPastLoadFactorKeepsEverythingFindable) {
  RelStore store;
  constexpr uint64_t kN = 500;  // forces several dedup/index table doublings
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(store.Insert({V(i), V(i % 7)}));
  }
  EXPECT_EQ(store.size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_TRUE(store.Contains({V(i), V(i % 7)}));
    ASSERT_EQ(store.Probe(0b01, Tuple{V(i)}).size(), 1u);
  }
  // Each residue class mod 7 collects ~kN/7 rows under the position-1 index.
  size_t total = 0;
  for (uint64_t r = 0; r < 7; ++r) {
    total += store.Probe(0b10, Tuple{V(r)}).size();
  }
  EXPECT_EQ(total, kN);
}

TEST(RelStoreTest, ClearResetsIndexesForReuse) {
  RelStore store;
  store.Insert({V(1), V(2)});
  store.Insert({V(1), V(3)});
  EXPECT_EQ(store.Probe(0b01, Tuple{V(1)}).size(), 2u);

  // After clear (the scratch-reuse path), stale rows must not resurface.
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.Contains({V(1), V(2)}));
  EXPECT_TRUE(store.Probe(0b01, Tuple{V(1)}).empty());

  store.Insert({V(1), V(9)});
  const std::vector<uint32_t>& rows = store.Probe(0b01, Tuple{V(1)});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 0u);
}

TEST(DatabaseTest, ResetKeepsRelationsButDropsFacts) {
  Database db;
  uint32_t e = InternName("E");
  uint32_t s = InternName("S");
  EXPECT_TRUE(db.Insert(e, {V(1), V(2)}));
  EXPECT_TRUE(db.Insert(s, {V(3)}));
  EXPECT_EQ(db.size(), 2u);

  db.Reset();
  EXPECT_EQ(db.size(), 0u);
  EXPECT_FALSE(db.Contains(e, {V(1), V(2)}));
  EXPECT_TRUE(db.Insert(e, {V(1), V(2)}));
  EXPECT_EQ(db.size(), 1u);
}

TEST(DatabaseTest, ToInstanceRestrictsLikeInstanceRestrict) {
  Database db(Instance{Fact("E", {V(1), V(2)}), Fact("S", {V(3)}),
                       Fact("T", {V(4), V(5)})});
  Schema schema({{"E", 2}, {"S", 1}});

  Instance full = db.ToInstance();
  EXPECT_EQ(full.size(), 3u);
  EXPECT_EQ(db.ToInstance(&schema), full.Restrict(schema));
}

}  // namespace
}  // namespace calm::datalog
