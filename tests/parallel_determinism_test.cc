// The parallel checkers' determinism contract: for every thread count (and
// across repeated runs), FindViolation / FindPreservationViolation /
// ComputeLadder return byte-identical verdicts and counterexamples to the
// single-threaded path. Exercised on the exact search configurations the
// Theorem 3.1 bench (items 1-7) runs.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "monotonicity/checker.h"
#include "monotonicity/ladder.h"
#include "monotonicity/preservation.h"
#include "queries/graph_queries.h"

namespace calm {
namespace {

using monotonicity::ComputeLadder;
using monotonicity::Counterexample;
using monotonicity::ExhaustiveOptions;
using monotonicity::FindPreservationViolation;
using monotonicity::FindViolation;
using monotonicity::Ladder;
using monotonicity::MonotonicityClass;
using monotonicity::MonotonicityClassName;
using monotonicity::PreservationClass;
using monotonicity::PreservationOptions;
using monotonicity::PreservationViolation;

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  // Size the global pool generously so thread counts > 1 really run on
  // workers even on single-core CI runners (this is also what puts the
  // parallel paths in front of TSan).
  void SetUp() override { SetDefaultThreads(8); }
  void TearDown() override { SetDefaultThreads(0); }
};

// Renders a checker result to a canonical string so "byte-identical" is a
// plain string comparison.
std::string Render(const Result<std::optional<Counterexample>>& r) {
  if (!r.ok()) return "error: " + r.status().ToString();
  if (!r->has_value()) return "no violation";
  return r->value().ToString();
}

// One paper-bench search configuration.
struct Scenario {
  std::string label;
  std::unique_ptr<Query> query;
  MonotonicityClass cls;
  ExhaustiveOptions opts;
};

ExhaustiveOptions Opts(size_t domain, size_t facts_i, size_t fresh,
                       size_t facts_j) {
  ExhaustiveOptions o;
  o.domain_size = domain;
  o.max_facts_i = facts_i;
  o.fresh_values = fresh;
  o.max_facts_j = facts_j;
  return o;
}

// The FindViolation calls of bench_thm31_separations.cc, items (1)-(7):
// memberships (no violation exists, the whole space is searched) and
// separations (a counterexample exists and must come out identical).
std::vector<Scenario> Theorem31Scenarios() {
  std::vector<Scenario> s;
  // (1) V\S in Mdistinct; Q_TC in Mdisjoint \ Mdistinct.
  s.push_back({"(1) Q_TC Mdistinct", queries::MakeComplementTransitiveClosure(),
               MonotonicityClass::kDomainDistinct, Opts(2, 3, 2, 3)});
  s.push_back({"(1) Q_TC Mdisjoint", queries::MakeComplementTransitiveClosure(),
               MonotonicityClass::kDomainDisjoint, Opts(2, 3, 2, 3)});
  // (2) M = M^i on transitive closure.
  for (size_t jmax : {1u, 2u, 3u, 4u}) {
    s.push_back({"(2) TC M^" + std::to_string(jmax),
                 queries::MakeTransitiveClosure(), MonotonicityClass::kMonotone,
                 Opts(2, 2, 1, jmax)});
  }
  // (3) the clique ladder in M^i_distinct.
  for (size_t i : {1u, 2u}) {
    s.push_back({"(3) clique i=" + std::to_string(i),
                 queries::MakeCliqueQuery(i + 2),
                 MonotonicityClass::kDomainDistinct,
                 Opts(i + 2, i <= 1 ? (i + 1) * i + 1 : 3, 1, i)});
    s.push_back({"(3) clique i=" + std::to_string(i) + " violated",
                 queries::MakeCliqueQuery(i + 2),
                 MonotonicityClass::kDomainDistinct,
                 Opts(i + 2, i <= 1 ? (i + 1) * i + 1 : 3, 1, i + 1)});
  }
  // (4) the star ladder in M^i_disjoint.
  for (size_t i : {1u, 2u, 3u}) {
    s.push_back({"(4) star i=" + std::to_string(i),
                 queries::MakeStarQuery(i + 1),
                 MonotonicityClass::kDomainDisjoint, Opts(2, 2, i + 1, i)});
  }
  // (5) Q_clique_3 in M^2_disjoint but not M^2_distinct.
  s.push_back({"(5) clique3 disjoint", queries::MakeCliqueQuery(3),
               MonotonicityClass::kDomainDisjoint, Opts(3, 3, 2, 2)});
  s.push_back({"(5) clique3 distinct", queries::MakeCliqueQuery(3),
               MonotonicityClass::kDomainDistinct, Opts(3, 3, 2, 2)});
  // (6) Q_star_2 not in M^1_distinct.
  s.push_back({"(6) star2 distinct", queries::MakeStarQuery(2),
               MonotonicityClass::kDomainDistinct, Opts(2, 1, 1, 1)});
  // (7) Q^j_duplicate in M^{j-1}_distinct, out of M^j_disjoint.
  for (size_t j : {2u, 3u}) {
    s.push_back({"(7) dup j=" + std::to_string(j) + " distinct",
                 queries::MakeDuplicateQuery(j),
                 MonotonicityClass::kDomainDistinct, Opts(2, 2, 2, j - 1)});
    s.push_back({"(7) dup j=" + std::to_string(j) + " disjoint",
                 queries::MakeDuplicateQuery(j),
                 MonotonicityClass::kDomainDisjoint, Opts(2, 2, 2, j)});
  }
  return s;
}

TEST_F(ParallelDeterminismTest, FindViolationMatchesSerialOnTheorem31Items) {
  for (Scenario& s : Theorem31Scenarios()) {
    ExhaustiveOptions serial = s.opts;
    serial.threads = 1;
    std::string expected = Render(FindViolation(*s.query, s.cls, serial));
    for (size_t threads : {2u, 3u, 4u}) {
      ExhaustiveOptions parallel = s.opts;
      parallel.threads = threads;
      std::string got = Render(FindViolation(*s.query, s.cls, parallel));
      EXPECT_EQ(got, expected)
          << s.label << " (" << MonotonicityClassName(s.cls) << ") diverged at "
          << threads << " threads";
    }
  }
}

TEST_F(ParallelDeterminismTest, ReducedSweepMatchesSerialAcrossThreadCounts) {
  // The genericity-aware reduced sweep must keep the determinism contract:
  // identical verdicts and counterexamples at every thread count, and
  // identical to the full serial sweep (orbit representatives are the
  // enumeration-least members, so the merge-in-index-order argument is
  // unchanged).
  for (Scenario& s : Theorem31Scenarios()) {
    ExhaustiveOptions serial_full = s.opts;
    serial_full.threads = 1;
    serial_full.symmetry = SymmetryMode::kOff;
    std::string expected = Render(FindViolation(*s.query, s.cls, serial_full));
    for (size_t threads : {1u, 2u, 8u}) {
      ExhaustiveOptions reduced = s.opts;
      reduced.threads = threads;
      reduced.symmetry = SymmetryMode::kForceOn;
      std::string got = Render(FindViolation(*s.query, s.cls, reduced));
      EXPECT_EQ(got, expected)
          << s.label << " (" << MonotonicityClassName(s.cls)
          << ") reduced sweep diverged at " << threads << " threads";
    }
  }
}

TEST_F(ParallelDeterminismTest, FindViolationIsStableAcrossRepeatedRuns) {
  auto qtc = queries::MakeComplementTransitiveClosure();
  ExhaustiveOptions o = Opts(2, 3, 2, 3);
  o.threads = 4;
  std::string first =
      Render(FindViolation(*qtc, MonotonicityClass::kDomainDistinct, o));
  for (int run = 0; run < 5; ++run) {
    EXPECT_EQ(Render(FindViolation(*qtc, MonotonicityClass::kDomainDistinct, o)),
              first);
  }
  // The counterexample must exist here (Q_TC is not domain-distinct
  // monotone), so the stability assertion is about real payload bytes.
  EXPECT_NE(first, "no violation");
}

TEST_F(ParallelDeterminismTest, LadderMatchesSerial) {
  struct Case {
    std::unique_ptr<Query> query;
    size_t domain;
    size_t fresh;
  };
  std::vector<Case> cases;
  cases.push_back({queries::MakeCliqueQuery(3), 3, 1});
  cases.push_back({queries::MakeStarQuery(2), 2, 3});
  cases.push_back({queries::MakeComplementTransitiveClosure(), 2, 1});
  for (Case& c : cases) {
    ExhaustiveOptions o;
    o.domain_size = c.domain;
    o.max_facts_i = 3;
    o.fresh_values = c.fresh;
    o.threads = 1;
    Result<Ladder> serial = ComputeLadder(*c.query, 3, o);
    o.threads = 4;
    Result<Ladder> parallel = ComputeLadder(*c.query, 3, o);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->ToString(), serial->ToString());
    EXPECT_EQ(parallel->FirstDistinctViolation(),
              serial->FirstDistinctViolation());
    EXPECT_EQ(parallel->FirstDisjointViolation(),
              serial->FirstDisjointViolation());
    ASSERT_EQ(parallel->rows.size(), serial->rows.size());
    for (size_t r = 0; r < serial.value().rows.size(); ++r) {
      const auto& sr = serial.value().rows[r];
      const auto& pr = parallel.value().rows[r];
      EXPECT_EQ(pr.distinct_witness.has_value(),
                sr.distinct_witness.has_value());
      if (pr.distinct_witness && sr.distinct_witness) {
        EXPECT_EQ(pr.distinct_witness->ToString(),
                  sr.distinct_witness->ToString());
      }
    }
  }
}

TEST_F(ParallelDeterminismTest, PreservationMatchesSerial) {
  auto star = queries::MakeStarQuery(2);
  auto tc = queries::MakeTransitiveClosure();
  for (PreservationClass cls :
       {PreservationClass::kHomomorphisms,
        PreservationClass::kInjectiveHomomorphisms,
        PreservationClass::kExtensions}) {
    for (const Query* q : {static_cast<const Query*>(star.get()),
                           static_cast<const Query*>(tc.get())}) {
      PreservationOptions o;
      o.domain_size = 2;
      o.max_facts = 2;
      o.threads = 1;
      Result<std::optional<PreservationViolation>> serial =
          FindPreservationViolation(*q, cls, o);
      o.threads = 4;
      Result<std::optional<PreservationViolation>> parallel =
          FindPreservationViolation(*q, cls, o);
      ASSERT_EQ(parallel.ok(), serial.ok());
      if (!serial.ok()) continue;
      ASSERT_EQ(parallel->has_value(), serial->has_value()) << q->name();
      if (serial->has_value()) {
        EXPECT_EQ(parallel->value().ToString(), serial->value().ToString())
            << q->name();
      }
    }
  }
}

}  // namespace
}  // namespace calm
