#include <gtest/gtest.h>

#include <memory>

#include "queries/graph_queries.h"
#include "datalog/parser.h"
#include "transducer/datalog_transducer.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

namespace calm::transducer {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

// The declarative broadcast transitive-closure node from the header comment:
// ship unseen edges, store received ones, output the closure of everything.
DatalogTransducer MakeDatalogBroadcastTc(const ModelOptions& model) {
  TransducerSchema schema;
  schema.in = Schema({{"E", 2}});
  schema.out = Schema({{"T", 2}});
  schema.msg = Schema({{"mE", 2}});
  schema.mem = Schema({{"gotE", 2}, {"sentE", 2}});
  return DatalogTransducer::FromTextOrDie(
      schema, model,
      /*qout=*/
      "EE(x, y) :- E(x, y).\n"
      "EE(x, y) :- gotE(x, y).\n"
      "EE(x, y) :- mE(x, y).\n"
      "T(x, y) :- EE(x, y).\n"
      "T(x, z) :- T(x, y), EE(y, z).\n"
      ".output T\n",
      /*qins=*/
      "gotE(x, y) :- mE(x, y).\n"
      "sentE(x, y) :- E(x, y).\n"
      ".output gotE, sentE\n",
      /*qdel=*/"",
      /*qsnd=*/
      "mE(x, y) :- E(x, y), !sentE(x, y).\n"
      ".output mE\n",
      "datalog-broadcast-tc");
}

TEST(DatalogTransducerTest, ValidatesSchemas) {
  TransducerSchema schema;
  schema.in = Schema({{"E", 2}});
  schema.out = Schema({{"T", 2}});
  schema.msg = Schema({{"mE", 2}});
  schema.mem = Schema({{"gotE", 2}});
  // Qout writes into a relation not in any target schema.
  datalog::Program bad = datalog::ParseOrDie("U(x, y) :- E(x, y). .output U");
  Result<DatalogTransducer> r =
      DatalogTransducer::Create(schema, ModelOptions::Original(), bad, {}, {},
                                {}, "bad");
  EXPECT_FALSE(r.ok());
  // Reading an undeclared relation is rejected too.
  datalog::Program bad2 =
      datalog::ParseOrDie("T(x, y) :- Mystery(x, y). .output T");
  EXPECT_FALSE(DatalogTransducer::Create(schema, ModelOptions::Original(),
                                         bad2, {}, {}, {}, "bad2")
                   .ok());
}

TEST(DatalogTransducerTest, ComputesTcLikeNativeBroadcast) {
  ModelOptions model = ModelOptions::Original();
  DatalogTransducer datalog_t = MakeDatalogBroadcastTc(model);
  auto tc = queries::MakeTransitiveClosure();
  auto native_t = MakeBroadcastTransducer(tc.get());

  Instance input = workload::RandomGraph(6, 0.3, /*seed=*/11);
  Network nodes{V(100), V(101)};
  HashPolicy policy(nodes);

  Instance outputs[2];
  const Transducer* transducers[2] = {&datalog_t, native_t.get()};
  for (int which = 0; which < 2; ++which) {
    TransducerNetwork network(nodes, transducers[which], &policy, model);
    ASSERT_TRUE(network.Initialize(input).ok());
    Result<RunResult> r = RunToQuiescence(network);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r->quiesced);
    outputs[which] = r->output;
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  Result<Instance> expected = tc->Eval(input);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(outputs[0], expected.value());
}

TEST(DatalogTransducerTest, ConsistentAcrossSchedules) {
  ModelOptions model = ModelOptions::Original();
  DatalogTransducer t = MakeDatalogBroadcastTc(model);
  Network nodes{V(100), V(101), V(102)};
  HashPolicy policy(nodes);
  Instance input = workload::Cycle(5);

  std::unique_ptr<TransducerNetwork> holder;
  auto make = [&]() -> Result<TransducerNetwork*> {
    holder = std::make_unique<TransducerNetwork>(nodes, &t, &policy, model);
    CALM_RETURN_IF_ERROR(holder->Initialize(input));
    return holder.get();
  };
  Result<Instance> out = RunConsistently(make);
  ASSERT_TRUE(out.ok()) << out.status();
  auto tc = queries::MakeTransitiveClosure();
  EXPECT_EQ(out.value(), tc->Eval(input).value());
}

TEST(DatalogTransducerTest, DeliveredMessagesAreNotReForwarded) {
  // The Qsnd program has mE as a head; D's delivered mE facts must not seed
  // it, otherwise every delivery triggers a re-broadcast and the run never
  // quiesces.
  ModelOptions model = ModelOptions::Original();
  DatalogTransducer t = MakeDatalogBroadcastTc(model);
  Network nodes{V(100), V(101)};
  // All facts on node 100: exactly |E| * 1 messages should ever be sent by
  // it, and none by 101.
  AllToOnePolicy policy(V(100));
  TransducerNetwork network(nodes, &t, &policy, model);
  Instance input = workload::Path(4);  // 3 edges
  ASSERT_TRUE(network.Initialize(input).ok());
  Result<RunResult> r = RunToQuiescence(network);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->quiesced);
  EXPECT_EQ(r->stats.messages_sent, 3u);
}

TEST(DatalogTransducerTest, MemoryDeletion) {
  // A transducer that stores a flag and deletes it when a message arrives:
  // exercises the Qdel path ((ins \ del) applied, (del \ ins) removed).
  TransducerSchema schema;
  schema.in = Schema({{"V", 1}});
  schema.out = Schema({{"O", 1}});
  schema.msg = Schema({{"ping", 1}});
  schema.mem = Schema({{"flag", 1}, {"sent", 1}});
  ModelOptions model = ModelOptions::Original();
  DatalogTransducer t = DatalogTransducer::FromTextOrDie(
      schema, model,
      /*qout=*/"O(x) :- flag(x), ping(x).",
      /*qins=*/"flag(x) :- V(x). sent(x) :- V(x). .output flag, sent",
      /*qdel=*/"flag(x) :- ping(x). .output flag",
      /*qsnd=*/"ping(x) :- V(x), !sent(x). .output ping", "flag-deleter");

  Network nodes{V(100), V(101)};
  AllToOnePolicy policy(V(100));
  TransducerNetwork network(nodes, &t, &policy, model);
  ASSERT_TRUE(network.Initialize(Instance{Fact("V", {V(7)})}).ok());

  // Step node 100: stores flag(7), sends ping(7) to 101.
  ASSERT_TRUE(network.Heartbeat(V(100)).ok());
  EXPECT_TRUE(network.state(V(100)).Contains(Fact("flag", {V(7)})));
  ASSERT_EQ(network.buffer(V(101)).size(), 1u);

  // Deliver ping to 101: 101 has no local V, nothing happens there.
  ASSERT_TRUE(network.StepNode(V(101), {0}).ok());
  EXPECT_FALSE(network.state(V(101)).Contains(Fact("O", {V(7)})));
  EXPECT_TRUE(network.BuffersEmpty());
}

}  // namespace
}  // namespace calm::transducer
