#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "base/value.h"

namespace calm {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, RespectsBeginOffset) {
  ThreadPool pool(3);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, 200, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.ParallelFor(0, seen.size(), [&](size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (std::thread::id id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, UsesMultipleThreadsWhenAvailable) {
  ThreadPool pool(4);
  constexpr size_t kN = 4096;
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.ParallelFor(0, kN, [&](size_t) {
    // A tiny pause so workers get a chance to pick up chunks before the
    // caller drains the range.
    std::this_thread::yield();
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  // The caller always participates; with 3 workers and 4096 yielding tasks
  // at least one worker should have joined in. (Not asserting == 4: the
  // scheduler owes us nothing on a loaded machine.)
  EXPECT_GE(ids.size(), 1u);
}

TEST(ThreadPoolTest, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 1000,
                       [&](size_t i) {
                         if (i == 357) throw std::runtime_error("boom 357");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionAbandonsRemainingChunks) {
  ThreadPool pool(2);
  std::atomic<size_t> executed{0};
  try {
    pool.ParallelFor(0, 1u << 20, [&](size_t i) {
      if (i == 0) throw std::runtime_error("early");
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "early");
  }
  // Chunks already handed out may finish, but the bulk of the range must
  // have been skipped.
  EXPECT_LT(executed.load(), 1u << 20);
}

TEST(ThreadPoolTest, ExceptionOnSerialPathPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 4,
                                [](size_t i) {
                                  if (i == 2) throw std::logic_error("serial");
                                }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsSeriallyWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 64;
  constexpr size_t kInner = 64;
  std::atomic<size_t> count{0};
  pool.ParallelFor(0, kOuter, [&](size_t) {
    std::thread::id outer_thread = std::this_thread::get_id();
    pool.ParallelFor(0, kInner, [&](size_t) {
      // The nested loop must stay on the thread that issued it.
      EXPECT_EQ(std::this_thread::get_id(), outer_thread);
      count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(count.load(), kOuter * kInner);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(0, 100, [&](size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 5050u);
  }
}

TEST(ThreadPoolFreeFunctionTest, ZeroAndOneThreadRunSerially) {
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  ParallelFor(seen.size(), 1, [&](size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (std::thread::id id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolFreeFunctionTest, HonorsDefaultThreadsOverride) {
  SetDefaultThreads(3);
  EXPECT_EQ(DefaultThreads(), 3u);
  std::atomic<size_t> sum{0};
  ParallelFor(1000, 0, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 999u * 1000u / 2u);
  SetDefaultThreads(0);  // reset to environment/hardware
  EXPECT_GE(DefaultThreads(), 1u);
}

TEST(ThreadPoolFreeFunctionTest, ExceptionPropagates) {
  SetDefaultThreads(4);
  EXPECT_THROW(ParallelFor(256, 4,
                           [](size_t i) {
                             if (i == 100) throw std::runtime_error("free");
                           }),
               std::runtime_error);
  SetDefaultThreads(0);
}

// The interner is the one piece of process-global mutable state the parallel
// checkers lean on; hammer it from the pool.
TEST(SymbolTableConcurrencyTest, ConcurrentInternIsConsistent) {
  SymbolTable table;
  ThreadPool pool(8);
  constexpr size_t kNames = 300;   // shared name space
  constexpr size_t kLookups = 4000;
  std::vector<std::atomic<uint32_t>> ids(kNames);
  for (auto& id : ids) id.store(UINT32_MAX);

  pool.ParallelFor(0, kLookups, [&](size_t i) {
    size_t n = i % kNames;
    std::string name = "sym_" + std::to_string(n);
    uint32_t id = table.Intern(name);
    // Every thread interning the same name must get the same id.
    uint32_t expected = UINT32_MAX;
    if (!ids[n].compare_exchange_strong(expected, id)) {
      ASSERT_EQ(expected, id) << name;
    }
    // Lock-free read path: the id resolves back to the name immediately.
    ASSERT_EQ(table.NameOf(id), name);
    ASSERT_EQ(table.Find(name), id);
  });

  EXPECT_EQ(table.size(), kNames);
  // Ids are dense and the table round-trips serially afterwards.
  for (size_t n = 0; n < kNames; ++n) {
    uint32_t id = ids[n].load();
    ASSERT_LT(id, kNames);
    EXPECT_EQ(table.NameOf(id), "sym_" + std::to_string(n));
  }
}

TEST(SymbolTableConcurrencyTest, GlobalInternFromManyThreads) {
  ThreadPool pool(6);
  pool.ParallelFor(0, 2000, [&](size_t i) {
    std::string name = "global_stress_" + std::to_string(i % 97);
    Value v = Sym(name);
    ASSERT_TRUE(v.is_symbol());
    ASSERT_EQ(ValueToString(v), name);
  });
}

}  // namespace
}  // namespace calm
