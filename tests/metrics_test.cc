#include "base/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "base/json.h"
#include "base/thread_pool.h"

namespace calm {
namespace {

// The registry is process-global; every test works against its own uniquely
// named series (the fixture resets values, not families, so parallel ctest
// shards in one binary can't collide on names).
std::string UniqueName(const char* base) {
  static std::atomic<int> n{0};
  return std::string("test.") + base + "." + std::to_string(n++);
}

TEST(CounterTest, IncrementAndValue) {
  Counter& c = MetricRegistry::Global().GetCounter(UniqueName("counter"));
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

// The exactness contract: sharded counters lose nothing — after quiescence
// the total equals the number of increments, at every pool width.
TEST(CounterTest, ExactUnderConcurrency) {
  for (size_t threads : {1u, 2u, 8u}) {
    Counter& c = MetricRegistry::Global().GetCounter(UniqueName("concurrent"));
    constexpr size_t kIncrements = 100000;
    ThreadPool pool(threads);
    pool.ParallelFor(0, kIncrements, [&](size_t i) { c.Increment(i % 3 + 1); });
    uint64_t expected = 0;
    for (size_t i = 0; i < kIncrements; ++i) expected += i % 3 + 1;
    EXPECT_EQ(c.Value(), expected) << threads << " threads";
  }
}

TEST(GaugeTest, SetAndAdd) {
  Gauge& g = MetricRegistry::Global().GetGauge(UniqueName("gauge"));
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  Histogram& h = MetricRegistry::Global().GetHistogram(UniqueName("hist"));
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1024);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 1030u);
  // 0 and 1 land in the first bucket (le 1), 2 in le-2, 3 in le-4.
  EXPECT_EQ(h.BucketCount(Histogram::BucketOf(0)), 2u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketOf(2)), 1u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketOf(3)), 1u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketOf(1024)), 1u);
  EXPECT_LE(2u, Histogram::BucketBound(Histogram::BucketOf(2)));
}

TEST(HistogramTest, ExactUnderConcurrency) {
  Histogram& h = MetricRegistry::Global().GetHistogram(UniqueName("histc"));
  constexpr size_t kObservations = 50000;
  ThreadPool pool(8);
  pool.ParallelFor(0, kObservations, [&](size_t i) { h.Observe(i % 17); });
  EXPECT_EQ(h.Count(), kObservations);
}

TEST(RegistryTest, SameNameSameSeries) {
  std::string name = UniqueName("same");
  Counter& a = MetricRegistry::Global().GetCounter(name);
  Counter& b = MetricRegistry::Global().GetCounter(name);
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);
}

TEST(RegistryTest, LabelsDistinguishSeriesAndOrderDoesNot) {
  std::string name = UniqueName("labeled");
  Counter& ab =
      MetricRegistry::Global().GetCounter(name, {{"a", "1"}, {"b", "2"}});
  Counter& ba =
      MetricRegistry::Global().GetCounter(name, {{"b", "2"}, {"a", "1"}});
  Counter& other = MetricRegistry::Global().GetCounter(name, {{"a", "2"}});
  EXPECT_EQ(&ab, &ba);  // label order is not identity
  EXPECT_NE(&ab, &other);
}

TEST(RegistryTest, SeriesRefsStableAcrossGrowth) {
  std::string name = UniqueName("stable");
  Counter& first = MetricRegistry::Global().GetCounter(name);
  first.Increment();
  // Force the registry to grow; the earlier reference must stay valid.
  for (int i = 0; i < 100; ++i) {
    MetricRegistry::Global().GetCounter(name, {{"i", std::to_string(i)}});
  }
  first.Increment();
  EXPECT_EQ(first.Value(), 2u);
}

// Snapshot → Dump → Parse → same numbers: the registry's JSON form survives
// a round trip through the project serializer it is consumed with.
TEST(RegistryTest, SnapshotRoundTripsThroughJson) {
  std::string cname = UniqueName("snapc");
  std::string hname = UniqueName("snaph");
  MetricRegistry::Global().GetCounter(cname, {{"k", "v"}}).Increment(7);
  Histogram& h = MetricRegistry::Global().GetHistogram(hname);
  h.Observe(3);
  h.Observe(300);

  Json snapshot = MetricRegistry::Global().Snapshot();
  Result<Json> reparsed = Json::Parse(snapshot.Dump(2));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();

  bool saw_counter = false;
  for (const Json& c : reparsed->GetArray("counters").value()->items()) {
    if (c.GetString("name").value() != cname) continue;
    saw_counter = true;
    EXPECT_EQ(c.GetUint("value").value(), 7u);
    const Json* labels = c.Find("labels");
    ASSERT_NE(labels, nullptr);
    EXPECT_EQ(labels->GetString("k").value(), "v");
  }
  EXPECT_TRUE(saw_counter);

  bool saw_histogram = false;
  for (const Json& hj : reparsed->GetArray("histograms").value()->items()) {
    if (hj.GetString("name").value() != hname) continue;
    saw_histogram = true;
    EXPECT_EQ(hj.GetUint("count").value(), 2u);
    EXPECT_EQ(hj.GetUint("sum").value(), 303u);
    uint64_t bucket_total = 0;
    for (const Json& b : hj.GetArray("buckets").value()->items()) {
      bucket_total += b.GetUint("count").value();
    }
    EXPECT_EQ(bucket_total, 2u);
  }
  EXPECT_TRUE(saw_histogram);
}

TEST(RegistryTest, SnapshotIsDeterministicallyOrdered) {
  std::string name = UniqueName("order");
  MetricRegistry::Global().GetCounter(name, {{"z", "1"}});
  MetricRegistry::Global().GetCounter(name, {{"a", "1"}});
  Json a = MetricRegistry::Global().Snapshot();
  Json b = MetricRegistry::Global().Snapshot();
  EXPECT_EQ(a.Dump(2), b.Dump(2));
}

TEST(RegistryTest, ResetValuesKeepsFamilies) {
  std::string name = UniqueName("reset");
  Counter& c = MetricRegistry::Global().GetCounter(name);
  c.Increment(5);
  MetricRegistry::Global().ResetValues();
  EXPECT_EQ(c.Value(), 0u);
  // Same series object after the reset.
  EXPECT_EQ(&MetricRegistry::Global().GetCounter(name), &c);
}

TEST(MetricsEnabledTest, DefaultsOffAndToggles) {
  EXPECT_FALSE(MetricsEnabled());
  SetMetricsEnabled(true);
  EXPECT_TRUE(MetricsEnabled());
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
}

}  // namespace
}  // namespace calm
