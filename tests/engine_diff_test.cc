// Randomized differential harness: the tree-walking matcher vs the flat
// bytecode engine (DESIGN.md "Two engines, one semantics"). Programs and
// instances are generated from fixed seeds, so every run checks the same
// corpus; any divergence in outputs, error outcomes, EvalStats, ILOG
// invention, or checker verdicts is a bug in one of the engines. The CI
// engine-diff leg runs this under ASan/UBSan on top of the full suite.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "base/instance.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/program.h"
#include "monotonicity/checker.h"
#include "workload/graph_gen.h"

namespace calm::datalog {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

// The fixed vocabulary: stratum 0 is edb, higher strata are idb. Negated
// body atoms only reference strictly lower strata (except in the
// fixed-negation variant), so generated programs are always stratifiable.
struct RelSpec {
  const char* name;
  uint32_t arity;
  size_t stratum;
};

constexpr RelSpec kRels[] = {
    {"E", 2, 0}, {"F", 1, 0}, {"G", 3, 0},  // edb
    {"P", 2, 1}, {"Q", 1, 1},               // idb, stratum 1
    {"R", 2, 2}, {"S", 1, 2},               // idb, stratum 2
};
constexpr size_t kNumRels = sizeof(kRels) / sizeof(kRels[0]);
constexpr const char* kVars[] = {"x", "y", "z", "w", "v"};

size_t Rand(std::mt19937& rng, size_t bound) {
  return std::uniform_int_distribution<size_t>(0, bound - 1)(rng);
}

bool Chance(std::mt19937& rng, double p) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
}

// One random safe rule for head relation `head`. Head, negation, and
// inequality arguments only use variables bound by a positive body atom.
// `max_neg_stratum` bounds the strata negated atoms may reference
// (kRels[head].stratum for the fixed-negation corpus, one below otherwise).
std::string RandomRule(std::mt19937& rng, size_t head, size_t max_neg_stratum,
                       bool invent) {
  const size_t stratum = kRels[head].stratum;
  std::vector<std::string> bound;
  std::string body;
  const size_t natoms = 1 + Rand(rng, 3);
  for (size_t a = 0; a < natoms; ++a) {
    size_t rel = Rand(rng, kNumRels);
    while (kRels[rel].stratum > stratum) rel = Rand(rng, kNumRels);
    if (!body.empty()) body += ", ";
    body += kRels[rel].name;
    body += '(';
    for (uint32_t i = 0; i < kRels[rel].arity; ++i) {
      if (i > 0) body += ", ";
      if (Chance(rng, 0.15)) {
        body += std::to_string(Rand(rng, 5));
      } else {
        const char* var = kVars[Rand(rng, 5)];
        body += var;
        bound.push_back(var);
      }
    }
    body += ')';
  }
  auto bound_or_const = [&]() -> std::string {
    if (!bound.empty() && !Chance(rng, 0.1)) {
      return bound[Rand(rng, bound.size())];
    }
    return std::to_string(Rand(rng, 5));
  };
  if (Chance(rng, 0.4)) {
    size_t rel = Rand(rng, kNumRels);
    while (kRels[rel].stratum > max_neg_stratum) rel = Rand(rng, kNumRels);
    body += ", !";
    body += kRels[rel].name;
    body += '(';
    for (uint32_t i = 0; i < kRels[rel].arity; ++i) {
      if (i > 0) body += ", ";
      body += bound_or_const();
    }
    body += ')';
  }
  if (bound.size() >= 2 && Chance(rng, 0.3)) {
    body += ", " + bound[Rand(rng, bound.size())] + " != " +
            bound[Rand(rng, bound.size())];
  }
  std::string rule = kRels[head].name;
  rule += '(';
  for (uint32_t i = 0; i < kRels[head].arity; ++i) {
    if (i > 0) rule += ", ";
    if (invent && i == 0) {
      rule += '*';
    } else {
      rule += bound_or_const();
    }
  }
  rule += ") :- " + body + ".";
  return rule;
}

// `max_neg_stratum_delta` = 1 keeps negation strictly below the head's
// stratum (stratifiable); 0 allows same-stratum negation (only valid for
// the fixed-negation evaluator). `invention` marks the top-stratum binary
// relation's rules as inventing their first position (ILOG).
std::string RandomProgram(std::mt19937& rng, size_t max_neg_stratum_delta,
                          bool invention) {
  std::string text;
  for (size_t rel = 0; rel < kNumRels; ++rel) {
    if (kRels[rel].stratum == 0) continue;
    const size_t nrules = 1 + Rand(rng, 3);
    const size_t neg_bound =
        kRels[rel].stratum >= max_neg_stratum_delta
            ? kRels[rel].stratum - max_neg_stratum_delta
            : 0;
    for (size_t r = 0; r < nrules; ++r) {
      const bool invent =
          invention && kRels[rel].stratum == 2 && kRels[rel].arity == 2;
      text += RandomRule(rng, rel, neg_bound, invent);
      text += '\n';
    }
  }
  return text;
}

Instance RandomInstance(std::mt19937& rng) {
  Instance in;
  const size_t nfacts = Rand(rng, 12);
  for (size_t i = 0; i < nfacts; ++i) {
    switch (Rand(rng, 3)) {
      case 0:
        in.Insert(Fact("E", {V(Rand(rng, 5)), V(Rand(rng, 5))}));
        break;
      case 1:
        in.Insert(Fact("F", {V(Rand(rng, 5))}));
        break;
      default:
        in.Insert(
            Fact("G", {V(Rand(rng, 5)), V(Rand(rng, 5)), V(Rand(rng, 5))}));
        break;
    }
  }
  return in;
}

enum class Mode { kStratified, kIlog, kFixedNegation };

// Evaluates one (program, instance) under both engines and both iteration
// modes and requires byte-identical outcomes: output instance (or error
// message), all EvalStats fields, and the ILOG invention count.
void ExpectEnginesAgree(const std::string& text, const Instance& input,
                        Mode mode, const std::string& label) {
  Result<Program> program = Parse(text);
  ASSERT_TRUE(program.ok()) << label << "\ngenerator bug:\n" << text;
  for (bool semi_naive : {true, false}) {
    EvalOptions tree, bytecode;
    tree.engine = EvalEngine::kTree;
    bytecode.engine = EvalEngine::kBytecode;
    tree.semi_naive = bytecode.semi_naive = semi_naive;
    EvalStats tree_stats, bytecode_stats;
    size_t tree_invented = 0, bytecode_invented = 0;
    auto run = [&](const EvalOptions& opts, EvalStats* stats,
                   size_t* invented) -> Result<Instance> {
      switch (mode) {
        case Mode::kIlog:
          return EvaluateIlog(*program, input, opts, stats, invented);
        case Mode::kFixedNegation:
          return EvaluateWithFixedNegation(*program, input, input, opts,
                                           stats);
        case Mode::kStratified:
          break;
      }
      return Evaluate(*program, input, opts, stats);
    };
    Result<Instance> a = run(tree, &tree_stats, &tree_invented);
    Result<Instance> b = run(bytecode, &bytecode_stats, &bytecode_invented);
    const std::string ctx = label + (semi_naive ? " semi-naive" : " naive") +
                            "\nprogram:\n" + text + "input: " +
                            input.ToString();
    ASSERT_EQ(a.ok(), b.ok())
        << ctx << "\ntree: " << (a.ok() ? "ok" : a.status().message())
        << "\nbytecode: " << (b.ok() ? "ok" : b.status().message());
    if (a.ok()) {
      EXPECT_EQ(a->ToString(), b->ToString()) << ctx;
    } else {
      EXPECT_EQ(a.status().message(), b.status().message()) << ctx;
    }
    EXPECT_EQ(EvalStatsToString(tree_stats), EvalStatsToString(bytecode_stats))
        << ctx;
    EXPECT_EQ(tree_invented, bytecode_invented) << ctx;
  }
}

TEST(EngineDiffTest, StratifiedRandomPrograms) {
  for (unsigned seed = 0; seed < 60; ++seed) {
    std::mt19937 rng(1000 + seed);
    std::string text = RandomProgram(rng, /*max_neg_stratum_delta=*/1,
                                     /*invention=*/false);
    for (unsigned i = 0; i < 2; ++i) {
      Instance input = RandomInstance(rng);
      ExpectEnginesAgree(text, input, Mode::kStratified,
                         "stratified seed " + std::to_string(seed));
    }
  }
}

TEST(EngineDiffTest, IlogInventionPrograms) {
  for (unsigned seed = 0; seed < 30; ++seed) {
    std::mt19937 rng(2000 + seed);
    std::string text = RandomProgram(rng, /*max_neg_stratum_delta=*/1,
                                     /*invention=*/true);
    for (unsigned i = 0; i < 2; ++i) {
      Instance input = RandomInstance(rng);
      ExpectEnginesAgree(text, input, Mode::kIlog,
                         "ilog seed " + std::to_string(seed));
    }
  }
}

TEST(EngineDiffTest, FixedNegationPrograms) {
  // Same-stratum negation allowed: exercises the Gamma-operator evaluator
  // (the well-founded alternation's inner loop) on unstratifiable shapes.
  for (unsigned seed = 0; seed < 30; ++seed) {
    std::mt19937 rng(3000 + seed);
    std::string text = RandomProgram(rng, /*max_neg_stratum_delta=*/0,
                                     /*invention=*/false);
    for (unsigned i = 0; i < 2; ++i) {
      Instance input = RandomInstance(rng);
      ExpectEnginesAgree(text, input, Mode::kFixedNegation,
                         "fixed-negation seed " + std::to_string(seed));
    }
  }
}

// Checker verdicts: FindViolation drives full query evaluations through the
// prepared pipeline, so identical counterexamples (the whole verdict, not
// just existence) pin the engines' derivation order end to end.
TEST(EngineDiffTest, CheckerVerdictsMatch) {
  const struct {
    const char* name;
    const char* text;
  } kQueries[] = {
      {"tc", "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T"},
      {"qtc",
       "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).\n"
       "O(x, y) :- Adom(x), Adom(y), !T(x, y). .output O"},
      {"guarded",
       "O(x) :- F(x), !Q(x). Q(x) :- E(x, y), E(y, x). .output O"},
  };
  monotonicity::ExhaustiveOptions options;
  options.domain_size = 2;
  options.max_facts_i = 2;
  options.fresh_values = 1;
  options.max_facts_j = 2;
  for (const auto& q : kQueries) {
    for (auto cls : {monotonicity::MonotonicityClass::kMonotone,
                     monotonicity::MonotonicityClass::kDomainDisjoint}) {
      EvalOptions tree, bytecode;
      tree.engine = EvalEngine::kTree;
      bytecode.engine = EvalEngine::kBytecode;
      DatalogQuery tq = DatalogQuery::FromTextOrDie(
          q.text, q.name, DatalogQuery::Semantics::kStratified, tree);
      DatalogQuery bq = DatalogQuery::FromTextOrDie(
          q.text, q.name, DatalogQuery::Semantics::kStratified, bytecode);
      auto a = monotonicity::FindViolation(tq, cls, options);
      auto b = monotonicity::FindViolation(bq, cls, options);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(a->has_value(), b->has_value()) << q.name;
      if (a->has_value()) {
        EXPECT_EQ((*a)->ToString(), (*b)->ToString()) << q.name;
      }
    }
  }
}

// Morsel-parallel stratum evaluation must be byte-identical at every thread
// count: same output instance, same EvalStats (including rule_applications,
// which counts per-derivation work, and fixpoint_rounds, which pins the
// delta structure). Run the random corpus at eval_threads 1 / 2 / 8.
void ExpectThreadCountsAgree(const std::string& text, const Instance& input,
                             const std::string& label) {
  Result<Program> program = Parse(text);
  ASSERT_TRUE(program.ok()) << label << "\ngenerator bug:\n" << text;
  std::string ref_out, ref_stats;
  for (int threads : {1, 2, 8}) {
    EvalOptions opts;
    opts.engine = EvalEngine::kBytecode;
    opts.eval_threads = threads;
    EvalStats stats;
    Result<Instance> out = Evaluate(*program, input, opts, &stats);
    ASSERT_TRUE(out.ok()) << label << " threads=" << threads;
    if (threads == 1) {
      ref_out = out->ToString();
      ref_stats = EvalStatsToString(stats);
    } else {
      const std::string ctx = label + " threads=" + std::to_string(threads) +
                              "\nprogram:\n" + text;
      EXPECT_EQ(ref_out, out->ToString()) << ctx;
      EXPECT_EQ(ref_stats, EvalStatsToString(stats)) << ctx;
    }
  }
}

TEST(EngineDiffTest, EvalThreadsRandomPrograms) {
  for (unsigned seed = 0; seed < 30; ++seed) {
    std::mt19937 rng(4000 + seed);
    std::string text = RandomProgram(rng, /*max_neg_stratum_delta=*/1,
                                     /*invention=*/false);
    Instance input = RandomInstance(rng);
    ExpectThreadCountsAgree(text, input,
                            "eval-threads seed " + std::to_string(seed));
  }
}

// The random corpus above stays below the morsel size (its deltas are tens
// of rows), so it checks the flag wiring but not the concurrent section. A
// transitive closure over a dense random graph drives multi-thousand-row
// deltas through the lanes — with a negation stratum stacked on top so the
// anti-probe path runs inside lanes too.
TEST(EngineDiffTest, EvalThreadsLargeDeltas) {
  Instance input = workload::RandomGraphM(300, 1200, /*seed=*/11);
  ExpectThreadCountsAgree(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T", input,
      "eval-threads large TC");
  ExpectThreadCountsAgree(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).\n"
      "U(x, y) :- T(x, y), !E(x, y). .output U",
      input, "eval-threads large TC with negation");
}

}  // namespace
}  // namespace calm::datalog
