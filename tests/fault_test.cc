// Fault-injection channel, confluence oracle, and record/replay traces:
//   * FaultPlan determinism, fairness bounds, and scripted replay;
//   * strategy transducers stay confluent under every fault kind
//     (Theorems 4.3-4.5 hold on the faulty channel);
//   * the racy-election negative control diverges, the divergence shrinks
//     to a small fault schedule, and the shrunk trace replays
//     deterministically;
//   * StepNode input validation, fail_on_budget, and RunConsistently's
//     diverging-schedule diagnostics.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "queries/graph_queries.h"
#include "transducer/confluence.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

namespace calm::transducer {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

// ---------------------------------------------------------------------------
// Reusable scenario: everything a NetworkFactory needs to outlive its runs.
// ---------------------------------------------------------------------------

struct Scenario {
  std::unique_ptr<Query> query;
  std::unique_ptr<Transducer> transducer;
  Instance input;
  Network nodes;
  std::unique_ptr<DistributionPolicy> policy;
  ModelOptions model;
  // Networks handed out as raw pointers (RunConsistently) live here.
  std::vector<std::unique_ptr<TransducerNetwork>> retained;

  NetworkFactory Factory() {
    return [this]() -> Result<std::unique_ptr<TransducerNetwork>> {
      auto network = std::make_unique<TransducerNetwork>(
          nodes, transducer.get(), policy.get(), model);
      CALM_RETURN_IF_ERROR(network->Initialize(input));
      return network;
    };
  }
};

Scenario BroadcastTC(size_t node_count, uint64_t seed) {
  Scenario s;
  s.query = queries::MakeTransitiveClosure();
  s.transducer = MakeBroadcastTransducer(s.query.get());
  s.input = workload::RandomGraph(6, 0.3, seed);
  for (size_t k = 0; k < node_count; ++k) s.nodes.push_back(V(900 + k));
  s.policy = std::make_unique<HashPolicy>(s.nodes, seed);
  s.model = ModelOptions::Original();
  return s;
}

Scenario AbsenceVMinusS(size_t node_count, uint64_t seed) {
  Scenario s;
  s.query = std::make_unique<NativeQuery>(
      "v-minus-s", Schema({{"V", 1}, {"S", 1}}), Schema({{"O", 1}}),
      [](const Instance& in) -> Result<Instance> {
        Instance out;
        for (const Tuple& t : in.TuplesOf(InternName("V"))) {
          if (in.TuplesOf(InternName("S")).count(t) == 0) {
            out.Insert(Fact("O", t));
          }
        }
        return out;
      });
  s.transducer = MakeAbsenceTransducer(s.query.get());
  for (uint64_t k = 0; k < 4; ++k) s.input.Insert(Fact("V", {V(k)}));
  s.input.Insert(Fact("S", {V(seed % 4)}));
  for (size_t k = 0; k < node_count; ++k) s.nodes.push_back(V(900 + k));
  s.policy = std::make_unique<HashPolicy>(s.nodes, seed);
  s.model = ModelOptions::PolicyAware();
  return s;
}

Scenario RequestWinMove(size_t node_count, uint64_t seed) {
  Scenario s;
  s.query = queries::MakeWinMove();
  s.transducer = MakeDomainRequestTransducer(s.query.get());
  Instance graph = workload::RandomGraph(5, 0.35, seed);
  for (const Tuple& t : graph.TuplesOf(InternName("E"))) {
    s.input.Insert(Fact("Move", t));
  }
  for (size_t k = 0; k < node_count; ++k) s.nodes.push_back(V(900 + k));
  s.policy = std::make_unique<HashDomainGuidedPolicy>(s.nodes, seed);
  s.model = ModelOptions::PolicyAware();
  return s;
}

Scenario RacyElection(size_t node_count, uint64_t seed) {
  Scenario s;
  s.transducer = MakeRacyElectionTransducer();
  for (uint64_t k = 1; k <= node_count; ++k) s.input.Insert(Fact("P", {V(k)}));
  for (size_t k = 0; k < node_count; ++k) s.nodes.push_back(V(900 + k));
  s.policy = std::make_unique<HashPolicy>(s.nodes, seed);
  s.model = ModelOptions::Original();
  return s;
}

// Factory call that must succeed (gtest TEST bodies cannot propagate Status).
std::unique_ptr<TransducerNetwork> MustMake(Scenario& s) {
  Result<std::unique_ptr<TransducerNetwork>> r = s.Factory()();
  if (!r.ok()) {
    ADD_FAILURE() << "network factory failed: " << r.status();
    return nullptr;
  }
  return std::move(r).value();
}

// ---------------------------------------------------------------------------
// FaultPlan unit tests (channel driven directly, no network).
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, DeterministicGivenSeed) {
  net::FaultPlan a = net::FaultPlan::Random(17, net::FaultProfile::Chaos());
  net::FaultPlan b = net::FaultPlan::Random(17, net::FaultProfile::Chaos());
  a.BindNetwork(3);
  b.BindNetwork(3);
  for (uint64_t tick = 1; tick <= 100; ++tick) {
    std::vector<net::FaultPlan::Delivery> da, db;
    std::vector<size_t> ca, cb;
    a.BeginTransition(tick, &da, &ca);
    b.BeginTransition(tick, &db, &cb);
    ASSERT_EQ(ca, cb);
    ASSERT_EQ(da.size(), db.size());
    Fact f("M", {V(tick)});
    da.clear();
    db.clear();
    a.OnSend(0, 1 + tick % 2, f, tick, &da);
    b.OnSend(0, 1 + tick % 2, f, tick, &db);
    ASSERT_EQ(da.size(), db.size());
    for (size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].receiver, db[i].receiver);
      EXPECT_EQ(da[i].fact, db[i].fact);
      EXPECT_EQ(da[i].has_position, db[i].has_position);
      EXPECT_EQ(da[i].position, db[i].position);
    }
  }
  EXPECT_EQ(a.log(), b.log());
}

TEST(FaultPlanTest, RebindRestartsDecisionStream) {
  net::FaultPlan a = net::FaultPlan::Random(23, net::FaultProfile::Chaos());
  a.BindNetwork(2);
  std::vector<net::FaultPlan::Delivery> d;
  std::vector<size_t> c;
  for (uint64_t tick = 1; tick <= 40; ++tick) {
    a.BeginTransition(tick, &d, &c);
    a.OnSend(0, 1, Fact("M", {V(tick)}), tick, &d);
  }
  std::vector<net::FaultEvent> first = a.log();
  a.BindNetwork(2);  // same plan, fresh run
  d.clear();
  c.clear();
  for (uint64_t tick = 1; tick <= 40; ++tick) {
    a.BeginTransition(tick, &d, &c);
    a.OnSend(0, 1, Fact("M", {V(tick)}), tick, &d);
  }
  EXPECT_EQ(a.log(), first);
}

TEST(FaultPlanTest, DropRetransmitDeliversWithinHoldupBound) {
  // Fairness: every send lands within MaxHoldup ticks of its send tick,
  // even at a 90% per-attempt drop rate.
  net::FaultProfile profile = net::FaultProfile::DropOnly(0.9);
  net::FaultPlan plan = net::FaultPlan::Random(5, profile);
  plan.BindNetwork(2);
  std::map<uint64_t, uint64_t> sent_at;    // message value -> send tick
  std::map<uint64_t, uint64_t> landed_at;  // message value -> enqueue tick
  const uint64_t kSends = 50;
  const uint64_t kDrain = profile.MaxHoldup() + 2;
  for (uint64_t tick = 1; tick <= kSends + kDrain; ++tick) {
    std::vector<net::FaultPlan::Delivery> deliveries;
    std::vector<size_t> crashes;
    plan.BeginTransition(tick, &deliveries, &crashes);
    if (tick <= kSends) {
      sent_at[tick] = tick;
      plan.OnSend(0, 1, Fact("M", {V(tick)}), tick, &deliveries);
    }
    for (const net::FaultPlan::Delivery& d : deliveries) {
      uint64_t value = d.fact.args[0].payload();
      if (landed_at.count(value) == 0) landed_at[value] = tick;
    }
  }
  EXPECT_FALSE(plan.HasPendingMessages());
  EXPECT_GT(plan.stats().retransmits, 0u);
  ASSERT_EQ(landed_at.size(), kSends);
  for (const auto& [value, send_tick] : sent_at) {
    ASSERT_TRUE(landed_at.count(value)) << "message " << value << " lost";
    EXPECT_LE(landed_at[value] - send_tick, profile.MaxHoldup())
        << "message " << value << " held past the fairness bound";
  }
}

TEST(FaultPlanTest, PartitionHoldsThenHealsWithinWindow) {
  net::FaultEvent part;
  part.kind = net::FaultEvent::Kind::kPartition;
  part.tick = 2;
  part.window = 5;
  part.node_a = 0;
  part.node_b = 1;
  net::FaultPlan plan = net::FaultPlan::Scripted({part});
  plan.BindNetwork(2);
  std::vector<net::FaultPlan::Delivery> deliveries;
  std::vector<size_t> crashes;
  plan.BeginTransition(2, &deliveries, &crashes);  // opens the partition
  plan.OnSend(0, 1, Fact("M", {V(1)}), 2, &deliveries);
  EXPECT_TRUE(deliveries.empty());  // held behind the partition
  EXPECT_TRUE(plan.HasPendingMessages());
  EXPECT_EQ(plan.stats().partition_holds, 1u);
  uint64_t landed = 0;
  for (uint64_t tick = 3; tick <= 10 && landed == 0; ++tick) {
    deliveries.clear();
    plan.BeginTransition(tick, &deliveries, &crashes);
    if (!deliveries.empty()) landed = tick;
  }
  ASSERT_NE(landed, 0u);
  EXPECT_LE(landed, part.tick + part.window + 1);
  EXPECT_FALSE(plan.HasPendingMessages());
}

// ---------------------------------------------------------------------------
// Faulted network runs.
// ---------------------------------------------------------------------------

TEST(FaultyRunTest, BroadcastConfluentUnderChaos) {
  Scenario s = BroadcastTC(3, 1);
  Instance expected = s.query->Eval(s.input).value();
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    net::FaultPlan plan =
        net::FaultPlan::Random(seed, net::FaultProfile::Chaos());
    std::unique_ptr<TransducerNetwork> network = MustMake(s);
  ASSERT_NE(network, nullptr);
    RunOptions ro;
    ro.scheduler = RunOptions::SchedulerKind::kRandom;
    ro.seed = seed;
    ro.faults = &plan;
    Result<RunResult> r = RunToQuiescence(*network, ro);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r->quiesced) << "plan seed " << seed;
    EXPECT_EQ(r->output, expected) << "plan seed " << seed;
  }
}

TEST(FaultyRunTest, ScriptedLogReplaysIdentically) {
  Scenario s = BroadcastTC(3, 2);
  net::FaultPlan random = net::FaultPlan::Random(9, net::FaultProfile::Chaos());
  std::unique_ptr<TransducerNetwork> n1 = MustMake(s);
  ASSERT_NE(n1, nullptr);
  RunOptions ro;
  ro.scheduler = RunOptions::SchedulerKind::kRandom;
  ro.seed = 9;
  ro.faults = &random;
  Result<RunResult> r1 = RunToQuiescence(*n1, ro);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r1->quiesced);
  ASSERT_FALSE(random.log().empty()) << "chaos run injected no faults";

  net::FaultPlan scripted = net::FaultPlan::Scripted(random.log());
  std::unique_ptr<TransducerNetwork> n2 = MustMake(s);
  ASSERT_NE(n2, nullptr);
  ro.faults = &scripted;
  Result<RunResult> r2 = RunToQuiescence(*n2, ro);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r2->output, r1->output);
  EXPECT_EQ(scripted.log(), random.log());  // decision-for-decision replay
}

TEST(FaultyRunTest, AdversarialDelayWithDuplicationMatchesRoundRobin) {
  // Satellite (c): AdversarialDelayScheduler plus message duplication must
  // produce byte-identical output to the faultless round-robin run for all
  // three Fig. 2 strategy transducers.
  using MakeScenario = Scenario (*)(size_t, uint64_t);
  for (MakeScenario make :
       {&BroadcastTC, &AbsenceVMinusS, &RequestWinMove}) {
    Scenario s = make(3, 4);
    std::unique_ptr<TransducerNetwork> ref = MustMake(s);
  ASSERT_NE(ref, nullptr);
    Result<RunResult> reference = RunToQuiescence(*ref);
    ASSERT_TRUE(reference.ok()) << reference.status();
    ASSERT_TRUE(reference->quiesced);

    net::FaultPlan plan =
        net::FaultPlan::Random(11, net::FaultProfile::DuplicationOnly(0.8));
    std::unique_ptr<TransducerNetwork> network = MustMake(s);
  ASSERT_NE(network, nullptr);
    RunOptions ro;
    ro.scheduler = RunOptions::SchedulerKind::kAdversarialDelay;
    ro.max_delay = 8;
    ro.faults = &plan;
    Result<RunResult> r = RunToQuiescence(*network, ro);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r->quiesced) << s.transducer->name();
    EXPECT_EQ(r->output.ToString(), reference->output.ToString())
        << s.transducer->name();
  }
}

TEST(FaultyRunTest, CrashRestartRecovers) {
  // A crash-restart wipes a node's state mid-run; the durable inbox replay
  // plus re-delivered local input must reconverge to the correct output.
  Scenario s = BroadcastTC(3, 3);
  Instance expected = s.query->Eval(s.input).value();
  for (size_t victim = 0; victim < 3; ++victim) {
    net::FaultEvent crash;
    crash.kind = net::FaultEvent::Kind::kCrash;
    crash.tick = 6;
    crash.node = victim;
    net::FaultPlan plan = net::FaultPlan::Scripted({crash});
    std::unique_ptr<TransducerNetwork> network = MustMake(s);
  ASSERT_NE(network, nullptr);
    RunOptions ro;
    ro.faults = &plan;
    Result<RunResult> r = RunToQuiescence(*network, ro);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r->quiesced);
    EXPECT_EQ(plan.stats().crashes, 1u);
    EXPECT_EQ(r->output, expected) << "crashed node " << victim;
  }
}

// ---------------------------------------------------------------------------
// StepNode validation + runner diagnostics.
// ---------------------------------------------------------------------------

TEST(StepNodeValidationTest, RejectsMalformedDeliveryIndices) {
  Scenario s = BroadcastTC(2, 1);
  std::unique_ptr<TransducerNetwork> network = MustMake(s);
  ASSERT_NE(network, nullptr);
  // Empty buffer: any index is out of range.
  Status bad = network->StepNode(s.nodes[0], {0});
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("out of range"), std::string::npos);

  // Fill node 1's buffer via node 0's broadcast, then misuse the indices.
  ASSERT_TRUE(network->StepNode(s.nodes[0], {}).ok());
  ASSERT_GE(network->buffer(s.nodes[1]).size(), 2u);
  Status dup = network->StepNode(s.nodes[1], {1, 1});
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup.message().find("strictly increasing"), std::string::npos);
  Status decreasing = network->StepNode(s.nodes[1], {1, 0});
  EXPECT_EQ(decreasing.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decreasing.message().find("strictly increasing"),
            std::string::npos);
  Status huge = network->StepNode(s.nodes[1], {0, 999});
  EXPECT_EQ(huge.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(huge.message().find("out of range"), std::string::npos);
}

TEST(RunnerTest, FailOnBudgetReturnsDeadlineExceeded) {
  Scenario s = BroadcastTC(3, 1);
  std::unique_ptr<TransducerNetwork> network = MustMake(s);
  ASSERT_NE(network, nullptr);
  RunOptions ro;
  ro.max_transitions = 2;  // cannot possibly quiesce
  ro.fail_on_budget = true;
  Result<RunResult> r = RunToQuiescence(*network, ro);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(r.status().message().find("max_transitions=2"), std::string::npos);
  EXPECT_NE(r.status().message().find("round-robin"), std::string::npos);
  EXPECT_NE(r.status().message().find("transitions="), std::string::npos);

  // Without the flag the same run reports quiesced = false, not an error.
  std::unique_ptr<TransducerNetwork> network2 = MustMake(s);
  ASSERT_NE(network2, nullptr);
  ro.fail_on_budget = false;
  Result<RunResult> soft = RunToQuiescence(*network2, ro);
  ASSERT_TRUE(soft.ok()) << soft.status();
  EXPECT_FALSE(soft->quiesced);
}

TEST(RunnerTest, RunConsistentlyNamesDivergingSchedule) {
  Scenario s = RacyElection(3, 1);
  auto make = [&]() -> Result<TransducerNetwork*> {
    CALM_ASSIGN_OR_RETURN(std::unique_ptr<TransducerNetwork> network,
                          s.Factory()());
    s.retained.push_back(std::move(network));
    return s.retained.back().get();
  };
  ConsistencyOptions opts;
  opts.random_runs = 8;
  opts.seed = 3;
  Result<Instance> r = RunConsistently(make, opts);
  ASSERT_FALSE(r.ok()) << "racy election unexpectedly consistent";
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().message().find("schedule-dependent output"),
            std::string::npos);
  EXPECT_NE(r.status().message().find("random(seed="), std::string::npos);
  EXPECT_NE(r.status().message().find("round-robin(seed=0)"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Confluence oracle.
// ---------------------------------------------------------------------------

TEST(ConfluenceOracleTest, CoordinationFreeStrategiesAreConfluent) {
  using MakeScenario = Scenario (*)(size_t, uint64_t);
  for (MakeScenario make :
       {&BroadcastTC, &AbsenceVMinusS, &RequestWinMove}) {
    Scenario s = make(3, 2);
    ConfluenceOptions opts;
    opts.fault_plans = 6;
    opts.seed = 7;
    Result<ConfluenceReport> report = CheckConfluence(s.Factory(), opts);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->runs, opts.fault_plans * opts.schedulers.size());
    EXPECT_GT(report->faulted_runs, 0u);
    EXPECT_TRUE(report->confluent())
        << s.transducer->name() << " diverged: first witness under "
        << SchedulerKindName(report->divergences[0].scheduler) << " plan seed "
        << report->divergences[0].plan_seed;
  }
}

TEST(ConfluenceOracleTest, RacyElectionDivergesAndWitnessShrinksAndReplays) {
  Scenario s = RacyElection(3, 1);
  ConfluenceOptions opts;
  opts.fault_plans = 32;
  opts.seed = 1;
  // Round-robin only: faultless round-robin is deterministic, so any
  // divergence here is attributable to the injected faults — which is what
  // makes the shrunk schedule a meaningful witness.
  opts.schedulers = {RunOptions::SchedulerKind::kRoundRobin};
  Result<ConfluenceReport> report = CheckConfluence(s.Factory(), opts);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->confluent())
      << "racy election survived " << report->runs << " faulted runs";

  const DivergenceWitness& witness = report->divergences[0];
  EXPECT_FALSE(witness.events.empty());
  EXPECT_LE(witness.events.size(), witness.original_events);
  EXPECT_NE(witness.observed, report->reference);

  // The shrunk schedule replays deterministically: two fresh scripted runs
  // under the witness's scheduler produce the recorded divergent output.
  for (int attempt = 0; attempt < 2; ++attempt) {
    net::FaultPlan plan = net::FaultPlan::Scripted(witness.events);
    std::unique_ptr<TransducerNetwork> network = MustMake(s);
  ASSERT_NE(network, nullptr);
    RunOptions ro;
    ro.scheduler = witness.scheduler;
    ro.seed = witness.plan_seed;
    ro.faults = &plan;
    Result<RunResult> r = RunToQuiescence(*network, ro);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->output, witness.observed);
  }

  // 1-minimality: removing any single remaining event restores confluence
  // (or at least changes the outcome away from this witness's divergence).
  if (witness.events.size() > 1) {
    size_t still_diverging = 0;
    for (size_t skip = 0; skip < witness.events.size(); ++skip) {
      std::vector<net::FaultEvent> subset;
      for (size_t i = 0; i < witness.events.size(); ++i) {
        if (i != skip) subset.push_back(witness.events[i]);
      }
      net::FaultPlan plan = net::FaultPlan::Scripted(subset);
      std::unique_ptr<TransducerNetwork> network = MustMake(s);
  ASSERT_NE(network, nullptr);
      RunOptions ro;
      ro.scheduler = witness.scheduler;
      ro.seed = witness.plan_seed;
      ro.faults = &plan;
      Result<RunResult> r = RunToQuiescence(*network, ro);
      ASSERT_TRUE(r.ok()) << r.status();
      if (!r->quiesced || r->output != report->reference) ++still_diverging;
    }
    EXPECT_EQ(still_diverging, 0u)
        << "shrunk schedule is not 1-minimal: " << still_diverging
        << " single-event removals still diverge";
  }
}

// ---------------------------------------------------------------------------
// Record/replay traces.
// ---------------------------------------------------------------------------

TraceRecord WitnessTrace(const Scenario& s, const ConfluenceReport& report,
                         const DivergenceWitness& witness,
                         const std::string& scenario_name) {
  TraceRecord trace;
  trace.scenario = scenario_name;
  trace.policy = "hash";
  trace.policy_salt = 1;
  trace.model = s.model.ToString();
  for (Value n : s.nodes) trace.nodes.push_back(n.payload());
  s.input.ForEachFact([&](uint32_t rel, const Tuple& t) {
    trace.input.push_back(Fact(rel, t));
  });
  trace.scheduler = witness.scheduler;
  trace.scheduler_seed = witness.plan_seed;
  trace.events = witness.events;
  trace.choices = witness.choices;
  report.reference.ForEachFact([&](uint32_t rel, const Tuple& t) {
    trace.expected_output.push_back(Fact(rel, t));
  });
  witness.observed.ForEachFact([&](uint32_t rel, const Tuple& t) {
    trace.observed_output.push_back(Fact(rel, t));
  });
  return trace;
}

TEST(TraceTest, JsonRoundTripPreservesEveryField) {
  TraceRecord trace;
  trace.scenario = "racy-election";
  trace.policy = "hash";
  trace.policy_salt = 42;
  trace.model = "original";
  trace.nodes = {900, 901, 902};
  trace.input = {Fact("P", {V(1)}), Fact("P", {V(2)})};
  trace.scheduler = RunOptions::SchedulerKind::kAdversarialDelay;
  trace.scheduler_seed = 77;
  trace.deliver_prob = 0.25;
  trace.max_delay = 9;
  trace.max_transitions = 12345;
  net::FaultEvent dup, drop, reorder, part, crash;
  dup.kind = net::FaultEvent::Kind::kDuplicate;
  dup.send_seq = 3;
  dup.copies = 2;
  drop.kind = net::FaultEvent::Kind::kDrop;
  drop.send_seq = 5;
  drop.deliver_at = 20;
  drop.attempts = 2;
  reorder.kind = net::FaultEvent::Kind::kReorder;
  reorder.send_seq = 7;
  reorder.position = 1;
  part.kind = net::FaultEvent::Kind::kPartition;
  part.tick = 4;
  part.window = 6;
  part.node_a = 0;
  part.node_b = 2;
  crash.kind = net::FaultEvent::Kind::kCrash;
  crash.tick = 9;
  crash.node = 1;
  trace.events = {dup, drop, reorder, part, crash};
  net::Scheduler::Choice choice;
  choice.node_index = 2;
  choice.deliveries = {0, 3};
  trace.choices = {choice};
  trace.expected_output = {Fact("First", {V(1)})};
  trace.observed_output = {Fact("First", {V(1)}), Fact("First", {V(2)})};

  Result<std::string> json = SerializeTrace(trace);
  ASSERT_TRUE(json.ok()) << json.status();
  Result<TraceRecord> parsed = ParseTrace(*json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->version, trace.version);
  EXPECT_EQ(parsed->scenario, trace.scenario);
  EXPECT_EQ(parsed->policy, trace.policy);
  EXPECT_EQ(parsed->policy_salt, trace.policy_salt);
  EXPECT_EQ(parsed->model, trace.model);
  EXPECT_EQ(parsed->nodes, trace.nodes);
  EXPECT_EQ(parsed->input, trace.input);
  EXPECT_EQ(parsed->scheduler, trace.scheduler);
  EXPECT_EQ(parsed->scheduler_seed, trace.scheduler_seed);
  EXPECT_EQ(parsed->deliver_prob, trace.deliver_prob);
  EXPECT_EQ(parsed->max_delay, trace.max_delay);
  EXPECT_EQ(parsed->max_transitions, trace.max_transitions);
  EXPECT_EQ(parsed->events, trace.events);
  ASSERT_EQ(parsed->choices.size(), 1u);
  EXPECT_EQ(parsed->choices[0].node_index, choice.node_index);
  EXPECT_EQ(parsed->choices[0].deliveries, choice.deliveries);
  EXPECT_EQ(parsed->expected_output, trace.expected_output);
  EXPECT_EQ(parsed->observed_output, trace.observed_output);

  // Serialization is stable: a round-tripped trace dumps identically.
  Result<std::string> again = SerializeTrace(*parsed);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(*again, *json);
}

TEST(TraceTest, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(ParseTrace("not json").ok());
  EXPECT_FALSE(ParseTrace("[]").ok());
  EXPECT_FALSE(ParseTrace("{\"version\": 1}").ok());
  EXPECT_FALSE(ParseTrace("{\"version\": 99}").ok());
}

TEST(TraceTest, DivergenceWitnessReplaysThroughTrace) {
  // End-to-end: oracle finds a divergence, the witness serializes to JSON,
  // parses back, and ReplayTrace reproduces the recorded divergence.
  Scenario s = RacyElection(3, 1);
  ConfluenceOptions opts;
  opts.fault_plans = 32;
  opts.seed = 1;
  opts.schedulers = {RunOptions::SchedulerKind::kRoundRobin};
  Result<ConfluenceReport> report = CheckConfluence(s.Factory(), opts);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->confluent());

  TraceRecord trace =
      WitnessTrace(s, *report, report->divergences[0], "racy-election");
  Result<std::string> json = SerializeTrace(trace);
  ASSERT_TRUE(json.ok()) << json.status();
  Result<TraceRecord> parsed = ParseTrace(*json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  Result<ReplayOutcome> outcome = ReplayTrace(s.Factory(), *parsed);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->reproduced_output);
  EXPECT_TRUE(outcome->reproduced_choices);
  EXPECT_TRUE(outcome->diverged);
}

}  // namespace
}  // namespace calm::transducer
