#include <gtest/gtest.h>

#include "base/components.h"
#include "base/enumerator.h"
#include "base/homomorphism.h"
#include "base/instance.h"
#include "base/query.h"
#include "base/schema.h"
#include "base/status.h"
#include "base/value.h"

namespace calm {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

TEST(StatusTest, OkAndErrors) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status err = InvalidArgumentError("bad");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "INVALID_ARGUMENT: bad");
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad = NotFoundError("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(ValueTest, KindsAndOrdering) {
  Value i = Value::FromInt(7);
  Value s = Sym("a");
  Value inv = Value::Invented(3);
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(s.is_symbol());
  EXPECT_TRUE(inv.is_invented());
  EXPECT_EQ(i.payload(), 7u);
  EXPECT_NE(i, s);
  EXPECT_EQ(Sym("a"), Sym("a"));
  EXPECT_NE(Sym("a"), Sym("b"));
  EXPECT_LT(i, s);    // ints sort before symbols
  EXPECT_LT(s, inv);  // symbols before invented
  EXPECT_EQ(ValueToString(i), "7");
  EXPECT_EQ(ValueToString(s), "a");
  EXPECT_EQ(ValueToString(inv), "&3");
}

TEST(TupleTest, InlineAndSpilledStorage) {
  Tuple small{V(1), V(2), V(3), V(4)};
  EXPECT_TRUE(small.is_inline());
  EXPECT_EQ(small.size(), 4u);

  Tuple big{V(1), V(2), V(3), V(4), V(5)};
  EXPECT_FALSE(big.is_inline());
  ASSERT_EQ(big.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(big[i], V(i + 1));

  // Growing past the inline capacity preserves the prefix.
  Tuple grown;
  for (uint64_t i = 0; i < 10; ++i) grown.push_back(V(i));
  EXPECT_FALSE(grown.is_inline());
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(grown[i], V(i));
}

TEST(TupleTest, CopyAndMoveAcrossRepresentations) {
  Tuple inl{V(1), V(2)};
  Tuple spill{V(1), V(2), V(3), V(4), V(5), V(6)};

  Tuple inl_copy = inl;
  Tuple spill_copy = spill;
  EXPECT_EQ(inl_copy, inl);
  EXPECT_EQ(spill_copy, spill);

  Tuple moved = std::move(spill_copy);
  EXPECT_EQ(moved, spill);

  // Assignment across representations in both directions.
  Tuple t = inl;
  t = spill;
  EXPECT_EQ(t, spill);
  t = inl;
  EXPECT_EQ(t, inl);
}

TEST(TupleTest, ComparisonMatchesLexicographicContract) {
  // Same contract as the old std::vector<Value> representation:
  // lexicographic, shorter prefix first, independent of storage mode.
  EXPECT_LT((Tuple{V(1), V(2)}), (Tuple{V(1), V(3)}));
  EXPECT_LT((Tuple{V(1)}), (Tuple{V(1), V(0)}));
  EXPECT_LT((Tuple{V(1), V(2), V(3), V(4)}),
            (Tuple{V(1), V(2), V(3), V(4), V(0)}));
  EXPECT_EQ((Tuple{V(7), V(8), V(9), V(10), V(11)}),
            (Tuple{V(7), V(8), V(9), V(10), V(11)}));
  EXPECT_NE((Tuple{V(1), V(2)}), (Tuple{V(1)}));
}

TEST(TupleTest, HashAgreesAcrossRepresentations) {
  // Equal tuples must hash equal whether built inline or spilled-then-equal
  // (hash depends only on size and values).
  Tuple a{V(1), V(2), V(3)};
  Tuple b;
  b.reserve(8);  // force heap storage despite the small size
  b.push_back(V(1));
  b.push_back(V(2));
  b.push_back(V(3));
  EXPECT_FALSE(b.is_inline());
  EXPECT_EQ(a, b);
  EXPECT_EQ(TupleHash{}(a), TupleHash{}(b));
}

TEST(InstanceTest, InsertSortedMatchesInsert) {
  std::vector<Tuple> tuples{{V(1), V(2)}, {V(1), V(3)}, {V(2), V(2)}};
  Instance bulk;
  bulk.InsertSorted(InternName("E"), tuples);
  Instance one_by_one;
  for (const Tuple& t : tuples) one_by_one.Insert(Fact("E", t));
  EXPECT_EQ(bulk, one_by_one);

  // An empty bulk insert must leave the instance untouched (no phantom
  // empty-relation entry, which would break operator==).
  Instance empty_bulk;
  empty_bulk.InsertSorted(InternName("E"), {});
  EXPECT_EQ(empty_bulk, Instance{});

  Instance facts_bulk;
  facts_bulk.InsertSortedFacts(
      {Fact("E", {V(1), V(2)}), Fact("S", {V(9)})});
  Instance facts_ref{Fact("E", {V(1), V(2)}), Fact("S", {V(9)})};
  EXPECT_EQ(facts_bulk, facts_ref);
}

TEST(FactTest, EqualityAndPrinting) {
  Fact f("E", {V(1), V(2)});
  Fact g("E", {V(1), V(2)});
  Fact h("E", {V(2), V(1)});
  EXPECT_EQ(f, g);
  EXPECT_NE(f, h);
  EXPECT_EQ(FactToString(f), "E(1, 2)");
  EXPECT_EQ(FactHash{}(f), FactHash{}(g));
}

TEST(SchemaTest, BasicOperations) {
  Schema s({{"E", 2}, {"S", 1}});
  EXPECT_TRUE(s.ContainsName("E"));
  EXPECT_EQ(s.ArityOf(InternName("E")), 2u);
  EXPECT_TRUE(s.Admits(Fact("E", {V(1), V(2)})));
  EXPECT_FALSE(s.Admits(Fact("E", {V(1)})));
  EXPECT_FALSE(s.Admits(Fact("T", {V(1)})));
  EXPECT_EQ(s.size(), 2u);
}

TEST(SchemaTest, RejectsNullaryAndConflicts) {
  Schema s;
  EXPECT_FALSE(s.AddRelation("N", 0).ok());
  ASSERT_TRUE(s.AddRelation("E", 2).ok());
  EXPECT_TRUE(s.AddRelation("E", 2).ok());   // idempotent
  EXPECT_FALSE(s.AddRelation("E", 3).ok());  // conflicting arity
}

TEST(SchemaTest, UnionAndIncludes) {
  Schema a({{"E", 2}});
  Schema b({{"S", 1}});
  Result<Schema> u = Schema::Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(u->Includes(a));
  EXPECT_TRUE(u->Includes(b));
  Schema conflict({{"E", 3}});
  EXPECT_FALSE(Schema::Union(a, conflict).ok());
}

TEST(InstanceTest, InsertContainsErase) {
  Instance i;
  EXPECT_TRUE(i.Insert(Fact("E", {V(1), V(2)})));
  EXPECT_FALSE(i.Insert(Fact("E", {V(1), V(2)})));
  EXPECT_TRUE(i.Contains(Fact("E", {V(1), V(2)})));
  EXPECT_EQ(i.size(), 1u);
  EXPECT_TRUE(i.Erase(Fact("E", {V(1), V(2)})));
  EXPECT_TRUE(i.empty());
}

TEST(InstanceTest, ActiveDomainAndRestrict) {
  Instance i{Fact("E", {V(1), V(2)}), Fact("S", {V(3)})};
  std::set<Value> adom = i.ActiveDomain();
  EXPECT_EQ(adom, (std::set<Value>{V(1), V(2), V(3)}));
  Schema graph({{"E", 2}});
  Instance restricted = i.Restrict(graph);
  EXPECT_EQ(restricted.size(), 1u);
  EXPECT_TRUE(restricted.Contains(Fact("E", {V(1), V(2)})));
}

TEST(InstanceTest, SetOperations) {
  Instance a{Fact("E", {V(1), V(2)})};
  Instance b{Fact("E", {V(2), V(3)})};
  Instance u = Instance::Union(a, b);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_TRUE(a.IsSubsetOf(u));
  EXPECT_FALSE(u.IsSubsetOf(a));
  Instance d = Instance::Difference(u, a);
  EXPECT_EQ(d, b);
}

TEST(InstanceTest, DomainDistinctAndDisjoint) {
  Instance i{Fact("E", {V(1), V(2)})};
  Instance distinct{Fact("E", {V(2), V(9)})};   // has a new value
  Instance disjoint{Fact("E", {V(8), V(9)})};   // only new values
  Instance neither{Fact("E", {V(1), V(2)})};
  EXPECT_TRUE(IsDomainDistinctFrom(distinct, i));
  EXPECT_FALSE(IsDomainDisjointFrom(distinct, i));
  EXPECT_TRUE(IsDomainDistinctFrom(disjoint, i));
  EXPECT_TRUE(IsDomainDisjointFrom(disjoint, i));
  EXPECT_FALSE(IsDomainDistinctFrom(neither, i));
}

TEST(InstanceTest, InducedSubinstance) {
  // Lemma 3.2 hinges on: J induced subinstance of I iff I \ J domain
  // distinct from J.
  Instance i{Fact("E", {V(1), V(2)}), Fact("E", {V(2), V(3)}),
             Fact("E", {V(1), V(1)})};
  Instance induced{Fact("E", {V(1), V(2)}), Fact("E", {V(1), V(1)})};
  // adom(induced) = {1,2}; every fact of i over {1,2} is present.
  EXPECT_TRUE(IsInducedSubinstance(induced, i));
  Instance not_induced{Fact("E", {V(1), V(2)})};  // misses E(1,1)
  EXPECT_FALSE(IsInducedSubinstance(not_induced, i));
  EXPECT_TRUE(IsInducedSubinstance(i, i));
  EXPECT_TRUE(IsInducedSubinstance(Instance{}, i));
}

TEST(ComponentsTest, SplitsByActiveDomain) {
  Instance i{Fact("E", {V(1), V(2)}), Fact("E", {V(2), V(3)}),
             Fact("E", {V(10), V(11)}), Fact("S", {V(11)})};
  std::vector<Instance> comps = Components(i);
  ASSERT_EQ(comps.size(), 2u);
  size_t total = 0;
  for (const Instance& c : comps) total += c.size();
  EXPECT_EQ(total, i.size());
  // Components are pairwise domain disjoint.
  EXPECT_TRUE(IsDomainDisjointFrom(comps[0], comps[1]));
}

TEST(ComponentsTest, SingleComponentAndEmpty) {
  EXPECT_TRUE(Components(Instance{}).empty());
  Instance chain{Fact("E", {V(1), V(2)}), Fact("E", {V(2), V(3)})};
  EXPECT_EQ(Components(chain).size(), 1u);
}

TEST(HomomorphismTest, ExistsAndInjective) {
  // Path of length 2 maps homomorphically into a single edge with a loop?
  Instance path{Fact("E", {V(1), V(2)})};
  Instance loop{Fact("E", {V(5), V(5)})};
  EXPECT_TRUE(HomomorphismExists(path, loop, /*injective=*/false));
  EXPECT_FALSE(HomomorphismExists(path, loop, /*injective=*/true));
  Instance two{Fact("E", {V(7), V(8)})};
  EXPECT_TRUE(HomomorphismExists(path, two, /*injective=*/true));
  // No homomorphism from an edge into the empty instance.
  EXPECT_FALSE(HomomorphismExists(path, Instance{}, false));
}

TEST(HomomorphismTest, CountsAllMappings) {
  Instance edge{Fact("E", {V(1), V(2)})};
  Instance clique2{Fact("E", {V(5), V(6)}), Fact("E", {V(6), V(5)})};
  int count = 0;
  ForEachHomomorphism(edge, clique2, false,
                      [&](const std::map<Value, Value>&) {
                        ++count;
                        return true;
                      });
  EXPECT_EQ(count, 2);  // 1->5,2->6 and 1->6,2->5
}

TEST(EnumeratorTest, AllFactsOverSchema) {
  Schema s({{"E", 2}, {"S", 1}});
  std::vector<Fact> facts = AllFactsOver(s, IntDomain(2));
  EXPECT_EQ(facts.size(), 4u + 2u);  // 2^2 + 2
}

TEST(EnumeratorTest, ForEachInstanceCounts) {
  Schema s({{"S", 1}});
  int count = 0;
  ForEachInstance(s, IntDomain(3), 3, [&](const Instance&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 8);  // all subsets of 3 possible facts
}

TEST(EnumeratorTest, StopsEarly) {
  Schema s({{"S", 1}});
  int count = 0;
  bool finished = ForEachInstance(s, IntDomain(3), 3, [&](const Instance&) {
    ++count;
    return count < 3;
  });
  EXPECT_FALSE(finished);
  EXPECT_EQ(count, 3);
}

TEST(QueryTest, NativeQueryAndGenericity) {
  Schema graph({{"E", 2}});
  // The identity query on E.
  NativeQuery identity("id", graph, graph, [](const Instance& in) {
    return Result<Instance>(in);
  });
  Instance i{Fact("E", {V(1), V(2)})};
  Result<Instance> out = identity.Eval(i);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), i);
  std::map<Value, Value> swap{{V(1), V(2)}, {V(2), V(1)}};
  EXPECT_TRUE(CheckGenericity(identity, i, swap).ok());
}

TEST(QueryTest, GenericityViolationDetected) {
  Schema graph({{"E", 2}});
  // A non-generic query: outputs only edges whose source is the value 1.
  NativeQuery bad("bad", graph, graph, [](const Instance& in) {
    Instance out;
    for (const Tuple& t : in.TuplesOf(InternName("E"))) {
      if (t[0] == Value::FromInt(1)) out.Insert(Fact("E", t));
    }
    return Result<Instance>(out);
  });
  Instance i{Fact("E", {V(1), V(2)})};
  std::map<Value, Value> swap{{V(1), V(2)}, {V(2), V(1)}};
  EXPECT_FALSE(CheckGenericity(bad, i, swap).ok());
}

}  // namespace
}  // namespace calm
