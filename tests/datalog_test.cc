#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/fragment.h"
#include "datalog/parser.h"
#include "datalog/program.h"
#include "datalog/stratifier.h"
#include "datalog/wellfounded.h"
#include "workload/graph_gen.h"

namespace calm::datalog {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, ParsesSimpleRule) {
  Result<Program> p = Parse("T(x, y) :- E(x, y).");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->rules.size(), 1u);
  const Rule& r = p->rules[0];
  EXPECT_EQ(NameOf(r.head.relation), "T");
  ASSERT_EQ(r.pos.size(), 1u);
  EXPECT_EQ(NameOf(r.pos[0].relation), "E");
  EXPECT_TRUE(r.neg.empty());
}

TEST(ParserTest, ParsesNegationAndInequality) {
  Result<Program> p = Parse("O(x, y) :- E(x, y), !S(y), x != y.");
  ASSERT_TRUE(p.ok()) << p.status();
  const Rule& r = p->rules[0];
  EXPECT_EQ(r.pos.size(), 1u);
  EXPECT_EQ(r.neg.size(), 1u);
  EXPECT_EQ(r.ineqs.size(), 1u);
  // "O" head becomes the default output.
  EXPECT_EQ(p->output_relations.size(), 1u);
}

TEST(ParserTest, ParsesConstantsAndComments) {
  Result<Program> p = Parse(
      "% a comment\n"
      "O(x) :- E(x, 3), R(x, \"a\").  // trailing\n");
  ASSERT_TRUE(p.ok()) << p.status();
  const Rule& r = p->rules[0];
  EXPECT_EQ(r.pos[0].args[1].constant, V(3));
  EXPECT_EQ(r.pos[1].args[1].constant, Sym("a"));
}

TEST(ParserTest, OutputDirective) {
  Result<Program> p = Parse(
      ".output T, U\n"
      "T(x) :- A(x).\n"
      "U(x) :- B(x).\n");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->output_relations.size(), 2u);
}

TEST(ParserTest, InventionAtomInHead) {
  Result<Program> p = Parse("R(*, x) :- E(x, y).");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(p->rules[0].head.invents);
  EXPECT_EQ(p->rules[0].head.args.size(), 1u);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(Parse("T(x :- E(x).").ok());
  EXPECT_FALSE(Parse("T(x) :- E(x)").ok());  // missing dot
  EXPECT_FALSE(Parse("T(x) :- E(x), *(y).").ok());
  EXPECT_FALSE(Parse("@").ok());
}

TEST(ParserTest, RoundTripsThroughPrinter) {
  Program p = ParseOrDie("O(x, y) :- E(x, y), !S(y), x != y.");
  Program q = ParseOrDie(ProgramToString(p));
  EXPECT_EQ(RuleToString(p.rules[0]), RuleToString(q.rules[0]));
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

TEST(AnalysisTest, SchemasAndIdbEdb) {
  Program p = ParseOrDie("T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).");
  Result<ProgramInfo> info = Analyze(p);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_TRUE(info->idb.ContainsName("T"));
  EXPECT_TRUE(info->edb.ContainsName("E"));
  EXPECT_EQ(info->sch.size(), 2u);
}

TEST(AnalysisTest, RejectsUnsafeRules) {
  // Head variable not in a positive atom.
  EXPECT_FALSE(Analyze(ParseOrDie("T(x, z) :- E(x, y).")).ok());
  // Negated variable not in a positive atom.
  EXPECT_FALSE(Analyze(ParseOrDie("T(x) :- E(x, x), !S(z).")).ok());
  // Inequality variable not in a positive atom.
  EXPECT_FALSE(Analyze(ParseOrDie("T(x) :- E(x, x), x != z.")).ok());
}

TEST(AnalysisTest, RejectsArityConflicts) {
  EXPECT_FALSE(Analyze(ParseOrDie("T(x) :- E(x, x). T(x, y) :- E(x, y).")).ok());
}

TEST(AnalysisTest, RejectsInventionWithoutOptIn) {
  Program p = ParseOrDie("R(*, x) :- E(x, y).");
  EXPECT_FALSE(Analyze(p).ok());
  EXPECT_TRUE(Analyze(p, /*allow_invention=*/true).ok());
}

TEST(AnalysisTest, DetectsAdomUse) {
  Program p = ParseOrDie("O(x) :- Adom(x), !S(x).");
  Result<ProgramInfo> info = Analyze(p);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->uses_adom);
}

// ---------------------------------------------------------------------------
// Stratification
// ---------------------------------------------------------------------------

TEST(StratifierTest, PositiveProgramOneStratum) {
  Program p = ParseOrDie("T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).");
  ProgramInfo info = Analyze(p).value();
  Result<Stratification> s = Stratify(p, info);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->stratum_count, 1u);
}

TEST(StratifierTest, NegationForcesNewStratum) {
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).\n"
      "O(x, y) :- Adom(x), Adom(y), !T(x, y).");
  ProgramInfo info = Analyze(p).value();
  Result<Stratification> s = Stratify(p, info);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->stratum_count, 2u);
  EXPECT_LT(s->stratum_of[InternName("T")], s->stratum_of[InternName("O")]);
}

TEST(StratifierTest, WinMoveIsNotStratifiable) {
  Program p = ParseOrDie("Win(x) :- Move(x, y), !Win(y).");
  ProgramInfo info = Analyze(p).value();
  EXPECT_FALSE(Stratify(p, info).ok());
  EXPECT_FALSE(IsStratifiable(p, info));
}

TEST(StratifierTest, MutualPositiveRecursionIsFine) {
  Program p = ParseOrDie("A(x) :- B(x). B(x) :- A(x). A(x) :- S(x).");
  ProgramInfo info = Analyze(p).value();
  EXPECT_TRUE(IsStratifiable(p, info));
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

Instance EvalOrDie(const Program& p, const Instance& in,
                   EvalOptions opts = {}) {
  Result<Instance> r = Evaluate(p, in, opts);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r.value() : Instance{};
}

TEST(EvaluatorTest, TransitiveClosureOnPath) {
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T");
  Instance out = EvalOrDie(p, workload::Path(4));  // 0->1->2->3
  int pairs = 0;
  for (const Tuple& t : out.TuplesOf(InternName("T"))) {
    (void)t;
    ++pairs;
  }
  EXPECT_EQ(pairs, 6);  // (0,1)(0,2)(0,3)(1,2)(1,3)(2,3)
}

TEST(EvaluatorTest, NaiveAndSemiNaiveAgree) {
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T");
  Instance in = workload::RandomGraph(12, 0.2, /*seed=*/7);
  EvalOptions naive;
  naive.semi_naive = false;
  EXPECT_EQ(EvalOrDie(p, in), EvalOrDie(p, in, naive));
}

TEST(EvaluatorTest, StratifiedNegationComplementOfTC) {
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).\n"
      "O(x, y) :- Adom(x), Adom(y), !T(x, y). .output O");
  // Path 0->1: pairs without a path: (0,0),(1,0),(1,1).
  Instance out = EvalOrDie(p, workload::Path(2));
  const TupleSet& o = out.TuplesOf(InternName("O"));
  EXPECT_EQ(o.size(), 3u);
  EXPECT_TRUE(o.count({V(1), V(0)}) > 0);
  EXPECT_FALSE(o.count({V(0), V(1)}) > 0);
}

TEST(EvaluatorTest, InequalitiesFilter) {
  Program p = ParseOrDie("O(x, y) :- E(x, y), x != y. .output O");
  Instance in{Fact("E", {V(1), V(1)}), Fact("E", {V(1), V(2)})};
  Instance out = EvalOrDie(p, in);
  EXPECT_EQ(out.TuplesOf(InternName("O")).size(), 1u);
}

TEST(EvaluatorTest, ConstantsInRules) {
  Program p = ParseOrDie("O(x) :- E(x, 2). .output O");
  Instance in{Fact("E", {V(1), V(2)}), Fact("E", {V(3), V(4)})};
  Instance out = EvalOrDie(p, in);
  EXPECT_EQ(out.TuplesOf(InternName("O")).size(), 1u);
  EXPECT_TRUE(out.Contains(Fact("O", {V(1)})));
}

TEST(EvaluatorTest, RepeatedVariablesInAtom) {
  Program p = ParseOrDie("O(x) :- E(x, x). .output O");
  Instance in{Fact("E", {V(1), V(1)}), Fact("E", {V(1), V(2)})};
  Instance out = EvalOrDie(p, in);
  EXPECT_EQ(out.TuplesOf(InternName("O")).size(), 1u);
}

TEST(EvaluatorTest, EmptyInputGivesEmptyOutput) {
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T");
  EXPECT_TRUE(EvalOrDie(p, Instance{}).empty());
}

TEST(EvaluatorTest, TriangleJoinWithInequalities) {
  // Example 5.1's first rule.
  Program p = ParseOrDie(
      "T(x) :- E(x, y), E(y, z), E(z, x), y != x, y != z, x != z. .output T");
  Instance out = EvalOrDie(p, workload::Cycle(3));
  EXPECT_EQ(out.TuplesOf(InternName("T")).size(), 3u);
  // A path has no triangle; note Evaluate returns input + derived facts.
  EXPECT_TRUE(EvalOrDie(p, workload::Path(3)).TuplesOf(InternName("T")).empty());
}

TEST(EvaluatorTest, StatsReported) {
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T");
  EvalStats stats;
  Result<Instance> r = Evaluate(p, workload::Path(5), {}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stats.derived_facts, 0u);
  EXPECT_GT(stats.fixpoint_rounds, 1u);
}

TEST(EvaluatorTest, StatsNaiveVsSemiNaiveOnPath) {
  // TC on the path 0->1->2->3->4. Both modes derive the same 10 T facts and
  // need the same 5 delta rounds (longest derivation is length 4, plus the
  // empty round that detects the fixpoint); naive re-finds every valuation
  // each round, so its rule_applications count is strictly larger.
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T");

  EvalStats semi;
  ASSERT_TRUE(Evaluate(p, workload::Path(5), {}, &semi).ok());
  EvalOptions naive_opts;
  naive_opts.semi_naive = false;
  EvalStats naive;
  ASSERT_TRUE(Evaluate(p, workload::Path(5), naive_opts, &naive).ok());

  EXPECT_EQ(semi.fixpoint_rounds, 5u);
  EXPECT_EQ(naive.fixpoint_rounds, 5u);
  EXPECT_EQ(semi.derived_facts, 10u);
  EXPECT_EQ(naive.derived_facts, 10u);
  EXPECT_EQ(semi.rule_applications, 10u);  // each T fact found exactly once
  EXPECT_LT(semi.rule_applications, naive.rule_applications);
}

TEST(EvaluatorTest, ResourceLimitEnforced) {
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), T(y, z). .output T");
  EvalOptions opts;
  opts.max_total_facts = 10;
  Result<Instance> r = Evaluate(p, workload::Clique(6), opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvaluatorTest, UnstratifiableRejected) {
  Program p = ParseOrDie("Win(x) :- Move(x, y), !Win(y).");
  EXPECT_FALSE(Evaluate(p, Instance{}).ok());
}

// ---------------------------------------------------------------------------
// Fragments (Section 5.1)
// ---------------------------------------------------------------------------

FragmentInfo Classify(std::string_view text) {
  Program p = ParseOrDie(text);
  ProgramInfo info = Analyze(p).value();
  return ClassifyFragment(p, info);
}

TEST(FragmentTest, PositiveDatalog) {
  FragmentInfo f = Classify("T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).");
  EXPECT_TRUE(f.positive);
  EXPECT_FALSE(f.uses_inequalities);
  EXPECT_EQ(f.FragmentName(), "Datalog");
}

TEST(FragmentTest, DatalogWithInequality) {
  FragmentInfo f = Classify("T(x, y) :- E(x, y), x != y.");
  EXPECT_EQ(f.FragmentName(), "Datalog(!=)");
}

TEST(FragmentTest, SemiPositive) {
  FragmentInfo f = Classify("T(x) :- V(x), !S(x).");
  EXPECT_TRUE(f.semi_positive);
  EXPECT_FALSE(f.positive);
  EXPECT_EQ(f.FragmentName(), "SP-Datalog");
}

TEST(FragmentTest, ConnectedRuleDetection) {
  // Connected: x-y share E, y-z share E.
  EXPECT_TRUE(IsConnectedRule(ParseOrDie("T(x, z) :- E(x, y), E(y, z).").rules[0]));
  // Disconnected: {x,y} and {u,v} never co-occur.
  EXPECT_FALSE(
      IsConnectedRule(ParseOrDie("T(x, u) :- E(x, y), E(u, v).").rules[0]));
  // Single-variable rules are connected.
  EXPECT_TRUE(IsConnectedRule(ParseOrDie("T(x) :- S(x).").rules[0]));
}

TEST(FragmentTest, Example51P1IsConDatalog) {
  // Paper Example 5.1, program P1.
  FragmentInfo f = Classify(
      "T(x) :- E(x, y), E(y, z), E(z, x), y != x, y != z, x != z.\n"
      "O(x) :- Adom(x), !T(x).");
  EXPECT_TRUE(f.connected_stratified);
  EXPECT_TRUE(f.semi_connected);
  EXPECT_FALSE(f.semi_positive);
  EXPECT_EQ(f.FragmentName(), "con-Datalog~");
}

TEST(FragmentTest, Example51P2IsNotSemiConnected) {
  // Paper Example 5.1, program P2: the D rule is disconnected and D is
  // negated above it, so no stratification puts it in the last stratum.
  FragmentInfo f = Classify(
      "T(x, y, z) :- E(x, y), E(y, z), E(z, x), y != x, y != z, x != z.\n"
      "D(x1) :- T(x1, x2, x3), T(y1, y2, y3), x1 != y1, x1 != y2, x1 != y3, "
      "x2 != y1, x2 != y2, x2 != y3, x3 != y1, x3 != y2, x3 != y3.\n"
      "O(x) :- Adom(x), !D(x).");
  EXPECT_TRUE(f.stratifiable);
  EXPECT_FALSE(f.all_rules_connected);
  EXPECT_FALSE(f.semi_connected);
  EXPECT_EQ(f.FragmentName(), "Datalog~");
}

TEST(FragmentTest, DisconnectedLastStratumIsSemiConnected) {
  // The disconnected rule's head O is on top: semicon but not con, and the
  // negation is over the idb relation W, so not SP-Datalog either.
  FragmentInfo f = Classify(
      "T(x) :- E(x, y).\n"
      "W(x) :- E(x, x).\n"
      "O(x, u) :- T(x), T(u), !W(x).");
  EXPECT_FALSE(f.all_rules_connected);
  EXPECT_FALSE(f.semi_positive);
  EXPECT_TRUE(f.semi_connected);
  EXPECT_EQ(f.FragmentName(), "semicon-Datalog~");
}

TEST(FragmentTest, SPDatalogWithDisconnectedRuleIsSemiConnected) {
  // SP-Datalog ⊆ semicon-Datalog¬ (Section 5.1, inclusion (i)).
  FragmentInfo f = Classify("O(x, u) :- V(x), V(u), !S(x).");
  EXPECT_TRUE(f.semi_positive);
  EXPECT_TRUE(f.semi_connected);
}

// ---------------------------------------------------------------------------
// Well-founded semantics
// ---------------------------------------------------------------------------

TEST(WellFoundedTest, WinMoveChain) {
  // Game 0 -> 1 -> 2: position 2 is lost (no moves), 1 is won, 0 is lost.
  Program p = ParseOrDie("Win(x) :- Move(x, y), !Win(y).");
  Instance in{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)})};
  Result<WellFoundedModel> m = EvaluateWellFounded(p, in);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->definitely.Contains(Fact("Win", {V(1)})));
  EXPECT_FALSE(m->possibly.Contains(Fact("Win", {V(0)})));
  EXPECT_FALSE(m->possibly.Contains(Fact("Win", {V(2)})));
  EXPECT_TRUE(m->Undefined().empty());
}

TEST(WellFoundedTest, WinMoveCycleIsUndefined) {
  // A 2-cycle: both positions are drawn (undefined).
  Program p = ParseOrDie("Win(x) :- Move(x, y), !Win(y).");
  Instance in{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(0)})};
  Result<WellFoundedModel> m = EvaluateWellFounded(p, in);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->definitely.Contains(Fact("Win", {V(0)})));
  EXPECT_TRUE(m->possibly.Contains(Fact("Win", {V(0)})));
  EXPECT_EQ(m->Undefined().size(), 2u);
}

TEST(WellFoundedTest, AgreesWithStratifiedSemantics) {
  Program p = ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).\n"
      "O(x, y) :- Adom(x), Adom(y), !T(x, y). .output O");
  Instance in = workload::RandomGraph(6, 0.3, /*seed=*/3);
  Instance stratified = Evaluate(p, in).value();
  WellFoundedModel wf = EvaluateWellFounded(p, in).value();
  EXPECT_EQ(stratified, wf.definitely);
  EXPECT_EQ(wf.Undefined().size(), 0u);
}

TEST(WellFoundedTest, DoubledProgramMatchesAlternatingFixpoint) {
  Program p = ParseOrDie("Win(x) :- Move(x, y), !Win(y).");
  ProgramInfo info = Analyze(p).value();
  Instance in{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)}),
              Fact("Move", {V(3), V(3)})};
  WellFoundedModel wf = EvaluateWellFounded(p, in).value();

  const size_t steps = 4;
  DoubledProgram doubled = BuildDoubledProgram(p, info, steps);
  ProgramInfo dinfo = Analyze(doubled.program).value();
  ASSERT_TRUE(IsStratifiable(doubled.program, dinfo));
  Instance out = Evaluate(doubled.program, in).value();

  uint32_t lo = InternName(DoubledProgram::LoName("Win", steps));
  uint32_t hi = InternName(DoubledProgram::HiName("Win", steps));
  for (const Tuple& t : wf.definitely.TuplesOf(InternName("Win"))) {
    EXPECT_TRUE(out.TuplesOf(lo).count(t) > 0);
  }
  EXPECT_EQ(out.TuplesOf(lo).size(),
            wf.definitely.TuplesOf(InternName("Win")).size());
  EXPECT_EQ(out.TuplesOf(hi).size(),
            wf.possibly.TuplesOf(InternName("Win")).size());
}

// ---------------------------------------------------------------------------
// DatalogQuery wrapper
// ---------------------------------------------------------------------------

TEST(DatalogQueryTest, ComputesQueryInterface) {
  DatalogQuery q = DatalogQuery::FromTextOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T", "tc");
  EXPECT_TRUE(q.input_schema().ContainsName("E"));
  EXPECT_TRUE(q.output_schema().ContainsName("T"));
  Result<Instance> out = q.Eval(workload::Path(3));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST(DatalogQueryTest, AdomNotPartOfInputSchema) {
  DatalogQuery q = DatalogQuery::FromTextOrDie(
      "O(x) :- Adom(x), !S(x). .output O", "co-s");
  EXPECT_FALSE(q.input_schema().ContainsName("Adom"));
  EXPECT_TRUE(q.input_schema().ContainsName("S"));
  // Adom has no values if input only has S... adom({S(1)}) = {1}: O empty.
  Instance in{Fact("S", {V(1)})};
  EXPECT_TRUE(q.Eval(in)->empty());
  // With V(2) present in another relation? S is the only relation: use two
  // facts.
  Instance in2{Fact("S", {V(1)}), Fact("S", {V(2)})};
  in2.Erase(Fact("S", {V(2)}));
  EXPECT_TRUE(q.Eval(in2)->empty());
}

TEST(DatalogQueryTest, WellFoundedSemanticsQuery) {
  DatalogQuery q = DatalogQuery::FromTextOrDie(
      "Win(x) :- Move(x, y), !Win(y). .output Win", "win-move",
      DatalogQuery::Semantics::kWellFounded);
  Instance in{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)})};
  Result<Instance> out = q.Eval(in);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
  EXPECT_TRUE(out->Contains(Fact("Win", {V(1)})));
}

TEST(DatalogQueryTest, GenericityHolds) {
  DatalogQuery q = DatalogQuery::FromTextOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T", "tc");
  Instance in = workload::Cycle(4);
  std::map<Value, Value> pi{{V(0), V(3)}, {V(3), V(0)}};
  EXPECT_TRUE(CheckGenericity(q, in, pi).ok());
}

}  // namespace
}  // namespace calm::datalog
