// End-to-end observability: runs the real engine, checker, and transducer
// network with tracing enabled and checks that the recorded spans
// reconstruct the structure the engine reports through its stats — stratum
// counts, tick counts, per-node delivery totals. Also pins the shared
// JSON/human rendering of EvalStats and RunStats (one field list, one
// format, no drift between `--json` and console output).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "base/json.h"
#include "base/metrics.h"
#include "base/trace.h"
#include "datalog/evaluator.h"
#include "monotonicity/checker.h"
#include "net/message_buffer.h"
#include "queries/graph_queries.h"
#include "queries/paper_programs.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

namespace calm {
namespace {

using monotonicity::Counterexample;
using monotonicity::ExhaustiveOptions;
using monotonicity::FindViolation;
using monotonicity::MonotonicityClass;

Value V(uint64_t i) { return Value::FromInt(i); }

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::SetEnabled(false);
    SetMetricsEnabled(false);
    Trace::Reset();
  }
  void TearDown() override {
    Trace::SetEnabled(false);
    SetMetricsEnabled(false);
    Trace::Reset();
  }
};

// Evaluating the complement-TC program (2 strata: TC, then its complement)
// records one datalog.eval span whose args match EvalStats, and one
// datalog.stratum span per stratum.
TEST_F(ObservabilityTest, EvalSpansReconstructStratumStructure) {
  if (!TracingCompiledIn()) GTEST_SKIP() << "built with CALM_TRACING=OFF";
  Trace::SetEnabled(true);

  datalog::DatalogQuery engine = queries::ComplementTcProgram();
  Instance input = workload::RandomGraph(6, 0.3, /*seed=*/3);
  datalog::EvalStats stats;
  Result<Instance> out =
      datalog::Evaluate(engine.program(), input, {}, &stats);
  ASSERT_TRUE(out.ok()) << out.status();

  EXPECT_EQ(Trace::SpanCount("datalog.eval"), 1u);
  EXPECT_EQ(Trace::SpanCount("datalog.stratum"), 2u);

  Json exported = Trace::ExportJson();
  bool saw_eval = false;
  std::map<int64_t, bool> strata_seen;
  for (const Json& e : exported.Find("traceEvents")->items()) {
    const std::string name = e.GetString("name").value();
    const Json* args = e.Find("args");
    if (name == "datalog.eval") {
      saw_eval = true;
      EXPECT_EQ(args->GetInt("strata").value(), 2);
      EXPECT_EQ(args->GetUint("rounds").value(), stats.fixpoint_rounds);
      EXPECT_EQ(args->GetUint("derived").value(), stats.derived_facts);
    } else if (name == "datalog.stratum") {
      strata_seen[args->GetInt("stratum").value()] = true;
    }
  }
  EXPECT_TRUE(saw_eval);
  EXPECT_EQ(strata_seen.size(), 2u);  // stratum indices 0 and 1
  EXPECT_TRUE(strata_seen[0]);
  EXPECT_TRUE(strata_seen[1]);
}

// FindViolation on Q_TC records one checker.find_violation span carrying
// the search-space size it actually walked.
TEST_F(ObservabilityTest, CheckerSpanRecordsSearchProgress) {
  if (!TracingCompiledIn()) GTEST_SKIP() << "built with CALM_TRACING=OFF";
  Trace::SetEnabled(true);

  auto qtc = queries::MakeComplementTransitiveClosure();
  ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 2;
  o.fresh_values = 1;
  o.max_facts_j = 2;
  Result<std::optional<Counterexample>> r =
      FindViolation(*qtc, MonotonicityClass::kDomainDistinct, o);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->has_value());  // Q_TC violates Mdistinct

  EXPECT_EQ(Trace::SpanCount("checker.find_violation"), 1u);
  Json exported = Trace::ExportJson();
  bool saw = false;
  for (const Json& e : exported.Find("traceEvents")->items()) {
    if (e.GetString("name").value() != "checker.find_violation") continue;
    saw = true;
    const Json* args = e.Find("args");
    EXPECT_EQ(args->GetInt("class").value(),
              static_cast<int64_t>(MonotonicityClass::kDomainDistinct));
    EXPECT_GT(args->GetInt("instances").value(), 0);
    EXPECT_GT(args->GetInt("pairs").value(), 0);
  }
  EXPECT_TRUE(saw);
}

// A win-move run on a 3-node network: net.step spans reconstruct the tick
// count, the heartbeat count, and the per-node delivery totals that the
// network reports in RunStats.
TEST_F(ObservabilityTest, NetworkSpansMatchRunStats) {
  if (!TracingCompiledIn()) GTEST_SKIP() << "built with CALM_TRACING=OFF";
  Trace::SetEnabled(true);

  auto query = queries::MakeWinMove();
  auto machine = transducer::MakeDomainRequestTransducer(query.get());
  Instance graph = workload::RandomGraph(5, 0.35, /*seed=*/1);
  Instance input;
  for (const Tuple& t : graph.TuplesOf(InternName("E"))) {
    input.Insert(Fact("Move", t));
  }
  transducer::Network nodes{V(900), V(901), V(902)};
  transducer::HashDomainGuidedPolicy policy(nodes, /*salt=*/5);
  transducer::TransducerNetwork network(
      nodes, machine.get(), &policy, transducer::ModelOptions::PolicyAware());
  ASSERT_TRUE(network.Initialize(input).ok());

  transducer::RunOptions ro;
  ro.scheduler = transducer::RunOptions::SchedulerKind::kRandom;
  ro.seed = 11;
  Result<transducer::RunResult> run = transducer::RunToQuiescence(network, ro);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_TRUE(run->quiesced);
  const net::RunStats& stats = run->stats;

  // One span per transition, ticks numbered 1..transitions.
  EXPECT_EQ(Trace::SpanCount("net.step"), stats.transitions);

  Json exported = Trace::ExportJson();
  uint64_t max_tick = 0;
  uint64_t delivered_total = 0;
  uint64_t sent_total = 0;
  uint64_t heartbeat_spans = 0;
  std::map<int64_t, uint64_t> delivered_by_node;
  for (const Json& e : exported.Find("traceEvents")->items()) {
    if (e.GetString("name").value() != "net.step") continue;
    const Json* args = e.Find("args");
    max_tick = std::max(max_tick, args->GetUint("tick").value());
    uint64_t delivered = args->GetUint("delivered").value();
    delivered_total += delivered;
    sent_total += args->GetUint("sent").value();
    if (delivered == 0) ++heartbeat_spans;
    delivered_by_node[args->GetInt("node").value()] += delivered;
  }
  EXPECT_EQ(max_tick, stats.transitions);
  EXPECT_EQ(delivered_total, stats.messages_delivered);
  EXPECT_EQ(sent_total, stats.messages_sent);
  EXPECT_EQ(heartbeat_spans, stats.heartbeats);
  EXPECT_GT(stats.messages_delivered, 0u);
  // Every delivery is attributed to one of the 3 nodes.
  uint64_t across_nodes = 0;
  for (const auto& [node, count] : delivered_by_node) {
    EXPECT_GE(node, 0);
    EXPECT_LT(node, 3);
    across_nodes += count;
  }
  EXPECT_EQ(across_nodes, stats.messages_delivered);
}

// The drift pin: console stats lines are rendered from the same Json object
// bench --json emits, field for field. A new field shows up in both or
// neither; the exact canonical forms are pinned here.
TEST_F(ObservabilityTest, EvalStatsStringIsDerivedFromItsJsonForm) {
  datalog::EvalStats s;
  s.derived_facts = 7;
  s.fixpoint_rounds = 3;
  s.rule_applications = 11;
  EXPECT_EQ(datalog::EvalStatsToString(s),
            "derived_facts=7 fixpoint_rounds=3 rule_applications=11");

  const Json json = datalog::EvalStatsToJson(s);
  std::string text = datalog::EvalStatsToString(s);
  for (const auto& [key, value] : json.members()) {
    EXPECT_NE(text.find(key + "=" + std::to_string(value.uint_value())),
              std::string::npos)
        << key;
  }
}

TEST_F(ObservabilityTest, RunStatsStringIsDerivedFromItsJsonForm) {
  net::RunStats s;
  s.transitions = 9;
  s.heartbeats = 2;
  s.messages_sent = 5;
  s.messages_delivered = 4;
  s.output_facts = 3;
  s.output_complete_at = 8;
  EXPECT_EQ(net::RunStatsToString(s),
            "transitions=9 heartbeats=2 sent=5 delivered=4 output_facts=3 "
            "output_complete_at=8");

  const Json json = net::RunStatsToJson(s);
  std::string text = net::RunStatsToString(s);
  for (const auto& [key, value] : json.members()) {
    EXPECT_NE(text.find(key + "=" + std::to_string(value.uint_value())),
              std::string::npos)
        << key;
  }
}

}  // namespace
}  // namespace calm
