#include <gtest/gtest.h>

#include "queries/graph_queries.h"
#include "queries/paper_programs.h"
#include "workload/graph_gen.h"
#include "workload/instance_gen.h"

namespace calm::queries {
namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

Instance EvalOrDie(const Query& q, const Instance& in) {
  Result<Instance> r = q.Eval(in);
  EXPECT_TRUE(r.ok()) << q.name() << ": " << r.status();
  return r.ok() ? r.value() : Instance{};
}

// ---------------------------------------------------------------------------
// Native query semantics
// ---------------------------------------------------------------------------

TEST(TransitiveClosureTest, PathAndCycle) {
  auto q = MakeTransitiveClosure();
  EXPECT_EQ(EvalOrDie(*q, workload::Path(4)).size(), 6u);
  EXPECT_EQ(EvalOrDie(*q, workload::Cycle(3)).size(), 9u);  // all pairs
  EXPECT_TRUE(EvalOrDie(*q, Instance{}).empty());
}

TEST(ComplementTcTest, CountsNonPaths) {
  auto q = MakeComplementTransitiveClosure();
  // Path 0->1: adom^2 = 4 pairs, reachable = {(0,1)}: 3 non-paths.
  EXPECT_EQ(EvalOrDie(*q, workload::Path(2)).size(), 3u);
  EXPECT_TRUE(EvalOrDie(*q, workload::Cycle(3)).empty());
}

TEST(CliqueQueryTest, DetectsCliques) {
  auto q3 = MakeCliqueQuery(3);
  // A directed cycle of 3 is not an undirected triangle? It is: each pair
  // is adjacent via some direction.
  EXPECT_TRUE(EvalOrDie(*q3, workload::Cycle(3)).empty());
  EXPECT_EQ(EvalOrDie(*q3, workload::Path(3)).size(), 2u);
  auto q4 = MakeCliqueQuery(4);
  EXPECT_FALSE(EvalOrDie(*q4, workload::Cycle(3)).empty());
  EXPECT_TRUE(EvalOrDie(*q4, workload::Clique(4)).empty());
}

TEST(StarQueryTest, DetectsStars) {
  auto q2 = MakeStarQuery(2);
  EXPECT_FALSE(EvalOrDie(*q2, workload::Star(1)).empty());
  EXPECT_TRUE(EvalOrDie(*q2, workload::Star(2)).empty());
  // Midpoint of a path has two neighbors.
  EXPECT_TRUE(EvalOrDie(*q2, workload::Path(3)).empty());
  // Self loops do not count as spokes.
  Instance loops{Fact("E", {V(0), V(0)}), Fact("E", {V(0), V(1)})};
  EXPECT_FALSE(EvalOrDie(*q2, loops).empty());
}

TEST(DuplicateQueryTest, IntersectionSemantics) {
  auto q = MakeDuplicateQuery(2);
  Instance no_dup{Fact("R1", {V(0), V(1)}), Fact("R2", {V(1), V(0)})};
  EXPECT_EQ(EvalOrDie(*q, no_dup).size(), 1u);
  Instance dup{Fact("R1", {V(0), V(1)}), Fact("R2", {V(0), V(1)})};
  EXPECT_TRUE(EvalOrDie(*q, dup).empty());
}

TEST(TrianglesUnlessTwoDisjointTest, Semantics) {
  auto q = MakeTrianglesUnlessTwoDisjoint();
  // One triangle: 3 rotations output.
  EXPECT_EQ(EvalOrDie(*q, workload::Cycle(3)).size(), 3u);
  // Two disjoint triangles: empty.
  Instance two = Instance::Union(workload::Cycle(3), workload::Cycle(3, 100));
  EXPECT_TRUE(EvalOrDie(*q, two).empty());
  // Two triangles sharing a vertex: not disjoint, still output.
  Instance shared = workload::Cycle(3);
  shared.Insert(Fact("E", {V(0), V(10)}));
  shared.Insert(Fact("E", {V(10), V(11)}));
  shared.Insert(Fact("E", {V(11), V(0)}));
  EXPECT_EQ(EvalOrDie(*q, shared).size(), 6u);
}

TEST(WinMoveTest, GamePositions) {
  auto q = MakeWinMove();
  // 0 -> 1 -> 2: only 1 is won.
  Instance chain{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)})};
  Instance out = EvalOrDie(*q, chain);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Fact("O", {V(1)})));
  // A 2-cycle: both drawn, nothing output.
  Instance cyc{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(0)})};
  EXPECT_TRUE(EvalOrDie(*q, cyc).empty());
  // Cycle with an escape to a sink: 1 can move to sink 2 (lost), so 1 won;
  // 0's only move hits won 1... 0 has no other moves: 0 lost.
  Instance esc{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(0)}),
               Fact("Move", {V(1), V(2)})};
  Instance out2 = EvalOrDie(*q, esc);
  EXPECT_EQ(out2.size(), 1u);
  EXPECT_TRUE(out2.Contains(Fact("O", {V(1)})));
}

TEST(TwoHopTest, JoinSemantics) {
  auto q = MakeTwoHopJoin();
  Instance out = EvalOrDie(*q, workload::Path(3));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Fact("O", {V(0), V(2)})));
}

// ---------------------------------------------------------------------------
// Native vs. Datalog cross-validation
// ---------------------------------------------------------------------------

TEST(CrossValidationTest, TcNativeVsDatalog) {
  auto native = MakeTransitiveClosure();
  datalog::DatalogQuery engine = TcProgram();
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Instance in = workload::RandomGraph(8, 0.25, seed);
    EXPECT_EQ(EvalOrDie(*native, in), EvalOrDie(engine, in)) << "seed " << seed;
  }
}

TEST(CrossValidationTest, ComplementTcNativeVsDatalog) {
  auto native = MakeComplementTransitiveClosure();
  datalog::DatalogQuery engine = ComplementTcProgram();
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Instance in = workload::RandomGraph(6, 0.3, seed);
    EXPECT_EQ(EvalOrDie(*native, in), EvalOrDie(engine, in)) << "seed " << seed;
  }
}

TEST(CrossValidationTest, WinMoveNativeVsWellFoundedDatalog) {
  auto native = MakeWinMove();
  datalog::DatalogQuery engine = WinMoveProgram();
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Instance graph = workload::RandomGraph(7, 0.3, seed);
    // Rename E to Move.
    Instance in;
    for (const Tuple& t : graph.TuplesOf(InternName("E"))) {
      in.Insert(Fact("Move", t));
    }
    Instance native_out = EvalOrDie(*native, in);
    Instance engine_out = EvalOrDie(engine, in);
    // The Datalog program outputs Win(x); native outputs O(x). Compare sets.
    const TupleSet& n = native_out.TuplesOf(InternName("O"));
    const TupleSet& e = engine_out.TuplesOf(InternName("Win"));
    EXPECT_EQ(n, e) << "seed " << seed;
  }
}

TEST(CrossValidationTest, DuplicateNativeVsDatalog) {
  auto native = MakeDuplicateQuery(3);
  datalog::DatalogQuery engine = DuplicateProgram(3);
  Schema schema = native->input_schema();
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Instance in = workload::RandomInstance(schema, 9, 3, seed);
    EXPECT_EQ(EvalOrDie(*native, in), EvalOrDie(engine, in)) << "seed " << seed;
  }
}


TEST(CrossValidationTest, CliqueProgramVsNative) {
  for (size_t k : {3u, 4u}) {
    auto native = MakeCliqueQuery(k);
    datalog::DatalogQuery engine = CliqueProgram(k);
    EXPECT_TRUE(engine.fragment().stratifiable);
    // The guard rule is disconnected and negated above: not semicon —
    // consistent with Q_clique being outside Mdisjoint.
    EXPECT_FALSE(engine.fragment().semi_connected);
    for (uint64_t seed = 0; seed < 8; ++seed) {
      Instance in = workload::RandomGraph(6, 0.35, seed);
      EXPECT_EQ(EvalOrDie(*native, in), EvalOrDie(engine, in))
          << "k=" << k << " seed=" << seed;
    }
    // Deterministic shapes.
    EXPECT_EQ(EvalOrDie(*native, workload::Clique(k)),
              EvalOrDie(engine, workload::Clique(k)));
    EXPECT_EQ(EvalOrDie(*native, workload::Path(k + 1)),
              EvalOrDie(engine, workload::Path(k + 1)));
  }
}

TEST(CrossValidationTest, StarProgramVsNative) {
  for (size_t k : {2u, 3u}) {
    auto native = MakeStarQuery(k);
    datalog::DatalogQuery engine = StarProgram(k);
    EXPECT_FALSE(engine.fragment().semi_connected);
    for (uint64_t seed = 0; seed < 8; ++seed) {
      Instance in = workload::RandomGraph(6, 0.3, seed);
      EXPECT_EQ(EvalOrDie(*native, in), EvalOrDie(engine, in))
          << "k=" << k << " seed=" << seed;
    }
    EXPECT_EQ(EvalOrDie(*native, workload::Star(k)),
              EvalOrDie(engine, workload::Star(k)));
  }
}

// ---------------------------------------------------------------------------
// Genericity property sweep over all witness queries
// ---------------------------------------------------------------------------

TEST(GenericityTest, AllWitnessQueriesAreGeneric) {
  std::vector<std::unique_ptr<Query>> qs;
  qs.push_back(MakeTransitiveClosure());
  qs.push_back(MakeComplementTransitiveClosure());
  qs.push_back(MakeCliqueQuery(3));
  qs.push_back(MakeStarQuery(2));
  qs.push_back(MakeTrianglesUnlessTwoDisjoint());
  qs.push_back(MakeTwoHopJoin());
  for (const auto& q : qs) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      Instance in = workload::RandomGraph(6, 0.3, seed);
      std::map<Value, Value> pi = workload::RandomPermutation(in, seed + 99);
      EXPECT_TRUE(CheckGenericity(*q, in, pi).ok()) << q->name();
    }
  }
}

}  // namespace
}  // namespace calm::queries
