#include "base/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "base/json.h"
#include "base/metrics.h"
#include "monotonicity/checker.h"
#include "queries/graph_queries.h"

namespace calm {
namespace {

using monotonicity::Counterexample;
using monotonicity::ExhaustiveOptions;
using monotonicity::FindViolation;
using monotonicity::MonotonicityClass;

// Shared-buffer hygiene: every test starts from an empty trace and leaves
// tracing disabled.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::SetEnabled(false);
    Trace::Reset();
  }
  void TearDown() override {
    Trace::SetEnabled(false);
    Trace::SetCapacity(size_t{1} << 20);
    Trace::Reset();
  }
};

// The export with the nondeterministic fields (timestamps, durations)
// removed: everything left — names, ids, parents, args, order — must be
// byte-identical across runs of the same single-threaded code.
std::string DeterministicPart(const Json& exported) {
  Json out = Json::Array();
  for (const Json& e : exported.Find("traceEvents")->items()) {
    Json copy = Json::Object();
    for (const auto& [key, value] : e.members()) {
      if (key == "ts" || key == "dur") continue;
      copy.Set(key, value);
    }
    out.Append(std::move(copy));
  }
  return out.Dump(-1);
}

void RecordSampleSpans() {
  TraceSpan outer("outer", {{"k", 1}});
  {
    TraceSpan inner("inner");
    inner.Arg("depth", 2);
    Trace::Instant("tick", {{"n", 7}});
  }
  TraceSpan sibling("inner");
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(TracingEnabled());
  RecordSampleSpans();
  EXPECT_EQ(Trace::EventCount(), 0u);
  EXPECT_EQ(Trace::SpanCount("outer"), 0u);
}

TEST_F(TraceTest, RecordsSpansAndInstants) {
  if (!TracingCompiledIn()) GTEST_SKIP() << "built with CALM_TRACING=OFF";
  Trace::SetEnabled(true);
  RecordSampleSpans();
  EXPECT_EQ(Trace::EventCount(), 4u);
  EXPECT_EQ(Trace::SpanCount("outer"), 1u);
  EXPECT_EQ(Trace::SpanCount("inner"), 2u);
  EXPECT_EQ(Trace::SpanCount("tick"), 0u);  // instants are not spans
  EXPECT_EQ(Trace::InstantCount("tick"), 1u);
}

TEST_F(TraceTest, NestingAndParentIds) {
  if (!TracingCompiledIn()) GTEST_SKIP() << "built with CALM_TRACING=OFF";
  Trace::SetEnabled(true);
  RecordSampleSpans();

  Json exported = Trace::ExportJson();
  const Json* events = exported.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 4u);

  // Events appear in open order: outer, inner, tick, inner(sibling).
  const Json& outer = events->items()[0];
  const Json& inner = events->items()[1];
  const Json& tick = events->items()[2];
  const Json& sibling = events->items()[3];
  EXPECT_EQ(outer.GetString("name").value(), "outer");
  EXPECT_EQ(inner.GetString("name").value(), "inner");
  EXPECT_EQ(tick.GetString("name").value(), "tick");
  EXPECT_EQ(sibling.GetString("name").value(), "inner");

  uint64_t outer_id = outer.Find("args")->GetUint("id").value();
  uint64_t inner_id = inner.Find("args")->GetUint("id").value();
  // Children carry their enclosing span's id; top level has no parent.
  EXPECT_EQ(outer.Find("args")->Find("parent"), nullptr);
  EXPECT_EQ(inner.Find("args")->GetUint("parent").value(), outer_id);
  EXPECT_EQ(tick.Find("args")->GetUint("parent").value(), inner_id);
  EXPECT_EQ(sibling.Find("args")->GetUint("parent").value(), outer_id);

  // User args ride along.
  EXPECT_EQ(outer.Find("args")->GetInt("k").value(), 1);
  EXPECT_EQ(inner.Find("args")->GetInt("depth").value(), 2);
  EXPECT_EQ(tick.Find("args")->GetInt("n").value(), 7);

  // Chrome phase markers: complete spans are "X" with a dur, instants "i".
  EXPECT_EQ(outer.GetString("ph").value(), "X");
  EXPECT_NE(outer.Find("dur"), nullptr);
  EXPECT_EQ(tick.GetString("ph").value(), "i");
}

TEST_F(TraceTest, IdsAndOrderAreDeterministicAcrossRuns) {
  if (!TracingCompiledIn()) GTEST_SKIP() << "built with CALM_TRACING=OFF";
  Trace::SetEnabled(true);
  RecordSampleSpans();
  std::string first = DeterministicPart(Trace::ExportJson());
  Trace::Reset();
  RecordSampleSpans();
  std::string second = DeterministicPart(Trace::ExportJson());
  EXPECT_EQ(first, second);
}

#ifndef CALM_TRACING_DISABLED
TEST_F(TraceTest, ArgsPastTheLimitAreDropped) {
  Trace::SetEnabled(true);
  {
    TraceSpan span("many");
    for (int64_t i = 0; i < 10; ++i) {
      span.Arg(i % 2 == 0 ? "even" : "odd", i);
    }
  }
  Json exported = Trace::ExportJson();
  const Json& event = exported.Find("traceEvents")->items()[0];
  // id + the first kMaxArgs user args survive.
  EXPECT_EQ(event.Find("args")->members().size(),
            1 + trace_internal::kMaxArgs);
}
#endif  // !CALM_TRACING_DISABLED

TEST_F(TraceTest, CapacityCapDropsNewestAndCounts) {
  if (!TracingCompiledIn()) GTEST_SKIP() << "built with CALM_TRACING=OFF";
  Trace::SetEnabled(true);
  Trace::SetCapacity(4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("capped");
  }
  EXPECT_EQ(Trace::EventCount(), 4u);
  EXPECT_EQ(Trace::SpanCount("capped"), 4u);
  EXPECT_EQ(Trace::DroppedCount(), 6u);
}

TEST_F(TraceTest, ChromeTraceFileRoundTripsThroughJson) {
  if (!TracingCompiledIn()) GTEST_SKIP() << "built with CALM_TRACING=OFF";
  Trace::SetEnabled(true);
  RecordSampleSpans();
  std::string path = ::testing::TempDir() + "/trace_test_export.json";
  ASSERT_TRUE(Trace::WriteChromeTrace(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  Result<Json> parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(parsed->Find("traceEvents")->is_array());
  EXPECT_EQ(parsed->Find("traceEvents")->items().size(), 4u);
  EXPECT_EQ(DeterministicPart(*parsed), DeterministicPart(Trace::ExportJson()));
}

TEST_F(TraceTest, DisabledBuildExportsEmptyDocument) {
  if (TracingCompiledIn()) GTEST_SKIP() << "covered by the enabled tests";
  Trace::SetEnabled(true);  // must be a no-op
  RecordSampleSpans();
  Json exported = Trace::ExportJson();
  EXPECT_EQ(exported.Find("traceEvents")->items().size(), 0u);
  std::string path = ::testing::TempDir() + "/trace_test_empty.json";
  EXPECT_TRUE(Trace::WriteChromeTrace(path).ok());
  std::remove(path.c_str());
}

// The pin behind the whole design: instrumentation only observes. Checker
// verdicts — including the exact counterexample — are byte-identical with
// tracing and metrics on versus off.
TEST_F(TraceTest, VerdictsByteIdenticalWithInstrumentationOn) {
  auto qtc = queries::MakeComplementTransitiveClosure();
  ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 2;
  o.fresh_values = 1;
  o.max_facts_j = 2;

  auto run = [&](MonotonicityClass cls) -> std::string {
    Result<std::optional<Counterexample>> r = FindViolation(*qtc, cls, o);
    if (!r.ok()) return "error: " + r.status().ToString();
    return r->has_value() ? r->value().ToString() : "no violation";
  };

  ASSERT_FALSE(TracingEnabled());
  ASSERT_FALSE(MetricsEnabled());
  std::string distinct_off = run(MonotonicityClass::kDomainDistinct);
  std::string disjoint_off = run(MonotonicityClass::kDomainDisjoint);
  EXPECT_NE(distinct_off, "no violation");  // Q_TC is outside Mdistinct
  EXPECT_EQ(disjoint_off, "no violation");  // and inside Mdisjoint

  Trace::SetEnabled(true);
  SetMetricsEnabled(true);
  std::string distinct_on = run(MonotonicityClass::kDomainDistinct);
  std::string disjoint_on = run(MonotonicityClass::kDomainDisjoint);
  SetMetricsEnabled(false);
  Trace::SetEnabled(false);

  EXPECT_EQ(distinct_off, distinct_on);
  EXPECT_EQ(disjoint_off, disjoint_on);
}

}  // namespace
}  // namespace calm
