// End-to-end integration: the Figure 2 pipeline. A Datalog¬ program comes
// in as text; we classify its fragment, pick the coordination-free
// execution strategy its class guarantees (broadcast for positive programs,
// absence for SP-Datalog, domain-request for semicon-Datalog¬), run it on a
// simulated asynchronous network, and compare against centralized
// evaluation.

#include <gtest/gtest.h>

#include <memory>

#include "datalog/parser.h"
#include "datalog/program.h"
#include "queries/paper_programs.h"
#include "transducer/compiler.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

namespace calm {
namespace {

using datalog::DatalogQuery;
using namespace calm::transducer;  // NOLINT

Value V(uint64_t i) { return Value::FromInt(i); }

// Runs `transducer` for `query` on a 3-node network and checks the output
// against central evaluation, under round-robin and random schedules.
void RunAndCompare(const Transducer& t, const Query& q, const Instance& input,
                   const DistributionPolicy& policy, const Network& nodes,
                   const ModelOptions& model) {
  Instance expected = q.Eval(input).value();
  std::unique_ptr<TransducerNetwork> holder;
  auto make = [&]() -> Result<TransducerNetwork*> {
    holder = std::make_unique<TransducerNetwork>(nodes, &t, &policy, model);
    CALM_RETURN_IF_ERROR(holder->Initialize(input));
    return holder.get();
  };
  ConsistencyOptions co;
  co.random_runs = 2;
  Result<Instance> out = RunConsistently(make, co);
  ASSERT_TRUE(out.ok()) << t.name() << ": " << out.status();
  EXPECT_EQ(out.value(), expected) << t.name();
}

// The pipeline: classify, choose the strategy Figure 2 licenses, execute.
void PipelineRun(const std::string& program_text, const Instance& input) {
  DatalogQuery query = DatalogQuery::FromTextOrDie(program_text, "pipeline");
  Network nodes{V(900), V(901), V(902)};

  const datalog::FragmentInfo& f = query.fragment();
  if (f.positive) {
    // Corollary 4.6: broadcast, compiled to pure Datalog, original model.
    Result<DatalogTransducer> t =
        CompileBroadcast(query.program(), "compiled-broadcast");
    ASSERT_TRUE(t.ok()) << t.status();
    HashPolicy policy(nodes);
    RunAndCompare(t.value(), query, input, policy, nodes,
                  ModelOptions::Original());
  } else if (f.semi_positive) {
    // Theorem 4.3: absence strategy, policy-aware model, any policy.
    auto t = MakeAbsenceTransducer(&query);
    HashPolicy policy(nodes, /*salt=*/3);
    RunAndCompare(*t, query, input, policy, nodes,
                  ModelOptions::PolicyAware());
  } else if (f.semi_connected) {
    // Theorem 4.4: domain-request strategy, domain-guided policies.
    auto t = MakeDomainRequestTransducer(&query);
    HashDomainGuidedPolicy policy(nodes, /*salt=*/5);
    RunAndCompare(*t, query, input, policy, nodes,
                  ModelOptions::PolicyAware());
  } else {
    FAIL() << "program outside the paper's coordination-free fragments";
  }
}

TEST(PipelineTest, PositiveProgramViaCompiledBroadcast) {
  PipelineRun(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T",
      workload::RandomGraph(7, 0.25, 1));
}

TEST(PipelineTest, NonLinearPositiveProgram) {
  PipelineRun(
      "S(x, y) :- E(w, x), E(w, y).\n"
      "S(x, y) :- E(u, x), S(u, v), E(v, y). .output S",
      workload::RandomGraph(6, 0.3, 2));
}

TEST(PipelineTest, SemiPositiveProgramViaAbsence) {
  Instance input{Fact("Vx", {V(1)}), Fact("Vx", {V(2)}), Fact("Vx", {V(3)}),
                 Fact("Sx", {V(2)})};
  PipelineRun("O(x) :- Vx(x), !Sx(x). .output O", input);
}

TEST(PipelineTest, SemiConnectedProgramViaDomainRequest) {
  PipelineRun(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).\n"
      "O(x, y) :- Adom(x), Adom(y), !T(x, y). .output O",
      workload::Path(4));
}

TEST(PipelineTest, Example51P1ViaDomainRequest) {
  PipelineRun(
      "T(x) :- E(x, y), E(y, z), E(z, x), y != x, y != z, x != z.\n"
      "O(x) :- Adom(x), !T(x). .output O",
      workload::Cycle(4));
}

// ---------------------------------------------------------------------------
// Compiler unit coverage.
// ---------------------------------------------------------------------------

TEST(CompileBroadcastTest, RejectsNegationAndAdom) {
  datalog::Program with_neg =
      datalog::ParseOrDie("O(x) :- Vx(x), !Sx(x). .output O");
  EXPECT_FALSE(CompileBroadcast(with_neg, "neg").ok());
  datalog::Program with_adom =
      datalog::ParseOrDie("O(x) :- Adom(x), E(x, x). .output O");
  EXPECT_FALSE(CompileBroadcast(with_adom, "adom").ok());
}

TEST(CompileBroadcastTest, MatchesNativeBroadcastMessageForMessage) {
  datalog::Program tc = datalog::ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T");
  Result<DatalogTransducer> compiled = CompileBroadcast(tc, "compiled");
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  Network nodes{V(900), V(901)};
  HashPolicy policy(nodes);
  Instance input = workload::Path(5);  // 4 edges

  TransducerNetwork network(nodes, &compiled.value(), &policy,
                            ModelOptions::Original());
  ASSERT_TRUE(network.Initialize(input).ok());
  Result<RunResult> r = RunToQuiescence(network);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->quiesced);
  // Like the native broadcast: each input fact shipped once per other node.
  EXPECT_EQ(r->stats.messages_sent, 4u * (nodes.size() - 1));
}

TEST(CompileBroadcastTest, WorksWithInequalitiesAndMultipleEdbs) {
  datalog::Program join = datalog::ParseOrDie(
      "O(x, z) :- R(x, y), Sx(y, z), x != z. .output O");
  Result<DatalogTransducer> compiled = CompileBroadcast(join, "join");
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  DatalogQuery query = DatalogQuery::FromTextOrDie(
      "O(x, z) :- R(x, y), Sx(y, z), x != z. .output O", "join-central");

  Instance input{Fact("R", {V(1), V(2)}), Fact("R", {V(3), V(4)}),
                 Fact("Sx", {V(2), V(5)}), Fact("Sx", {V(4), V(3)})};
  Network nodes{V(900), V(901)};
  HashPolicy policy(nodes);
  RunAndCompare(compiled.value(), query, input, policy, nodes,
                ModelOptions::Original());
}

}  // namespace
}  // namespace calm
