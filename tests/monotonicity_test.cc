#include <gtest/gtest.h>

#include "base/enumerator.h"
#include "monotonicity/checker.h"
#include "monotonicity/components_property.h"
#include "monotonicity/preservation.h"
#include "queries/graph_queries.h"
#include "queries/paper_programs.h"
#include "workload/graph_gen.h"

namespace calm::monotonicity {
namespace {

using queries::MakeCliqueQuery;
using queries::MakeComplementTransitiveClosure;
using queries::MakeDuplicateQuery;
using queries::MakeStarQuery;
using queries::MakeTransitiveClosure;
using queries::MakeTrianglesUnlessTwoDisjoint;
using queries::MakeTwoHopJoin;
using queries::MakeWinMove;

Value V(uint64_t i) { return Value::FromInt(i); }

// Convenience: run the exhaustive checker and return whether a violation of
// `cls` exists within `opts`.
bool Violates(const Query& q, MonotonicityClass cls, ExhaustiveOptions opts) {
  Result<std::optional<Counterexample>> r = FindViolation(q, cls, opts);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() && r->has_value();
}

ExhaustiveOptions Small() {
  ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 2;
  o.fresh_values = 2;
  o.max_facts_j = 2;
  return o;
}

// ---------------------------------------------------------------------------
// CheckPair basics
// ---------------------------------------------------------------------------

TEST(CheckPairTest, DetectsRetraction) {
  auto q = MakeStarQuery(2);
  Instance i{Fact("E", {V(0), V(1)})};
  Instance j{Fact("E", {V(0), V(2)})};
  Result<std::optional<Counterexample>> r = CheckPair(*q, i, j);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ(r->value().retracted.relation, InternName("O"));
  EXPECT_FALSE(r->value().ToString().empty());
}

TEST(CheckPairTest, NoRetractionForMonotoneQuery) {
  auto q = MakeTransitiveClosure();
  Instance i{Fact("E", {V(0), V(1)})};
  Instance j{Fact("E", {V(1), V(2)})};
  Result<std::optional<Counterexample>> r = CheckPair(*q, i, j);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
}

// ---------------------------------------------------------------------------
// Theorem 3.1(1): M ( Mdistinct ( Mdisjoint ( C
// ---------------------------------------------------------------------------

TEST(HierarchyTest, TransitiveClosureIsMonotone) {
  auto q = MakeTransitiveClosure();
  ExhaustiveOptions o = Small();
  EXPECT_FALSE(Violates(*q, MonotonicityClass::kMonotone, o));
  EXPECT_FALSE(Violates(*q, MonotonicityClass::kDomainDistinct, o));
  EXPECT_FALSE(Violates(*q, MonotonicityClass::kDomainDisjoint, o));
}

TEST(HierarchyTest, ComplementTcSeparatesDistinctFromDisjoint) {
  auto q = MakeComplementTransitiveClosure();
  // Q_TC not in Mdistinct: a fresh midpoint creates a path (paper's
  // argument: add E(a,c), E(c,b) with c new).
  ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 2;
  o.fresh_values = 1;
  o.max_facts_j = 2;
  EXPECT_TRUE(Violates(*q, MonotonicityClass::kDomainDistinct, o));
  // Q_TC in Mdisjoint: disjoint subgraphs never create old-to-old paths.
  EXPECT_FALSE(Violates(*q, MonotonicityClass::kDomainDisjoint, o));
  RandomOptions ro;
  ro.trials = 50;
  Result<std::optional<Counterexample>> r =
      FindViolationRandom(*q, MonotonicityClass::kDomainDisjoint, ro);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
}

TEST(HierarchyTest, TrianglesQueryOutsideMdisjoint) {
  auto q = MakeTrianglesUnlessTwoDisjoint();
  // Hand-built witness (the exhaustive search space with 3+3 values is
  // large): I = one triangle, J = a domain-disjoint triangle.
  Instance i = workload::Cycle(3);
  Instance j = workload::Cycle(3, /*base=*/100);
  Result<std::optional<Counterexample>> r = CheckPair(*q, i, j);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->has_value());
  EXPECT_TRUE(IsDomainDisjointFrom(j, i));
}

// ---------------------------------------------------------------------------
// Theorem 3.1(3,5): the clique ladder
// ---------------------------------------------------------------------------

TEST(HierarchyTest, Clique3InM1DistinctButNotM2Distinct) {
  auto q = MakeCliqueQuery(3);  // i = 1: Q^{i+2}
  ExhaustiveOptions o;
  o.domain_size = 3;
  o.max_facts_i = 3;
  o.fresh_values = 1;
  o.max_facts_j = 1;  // M^1_distinct
  EXPECT_FALSE(Violates(*q, MonotonicityClass::kDomainDistinct, o));
  o.max_facts_j = 2;  // M^2_distinct
  EXPECT_TRUE(Violates(*q, MonotonicityClass::kDomainDistinct, o));
}

TEST(HierarchyTest, Clique4InM2DistinctButNotM3Distinct) {
  auto q = MakeCliqueQuery(4);  // i = 2
  // Not in M^3_distinct: extend a triangle by one fresh center with 3 edges.
  Instance i = workload::Clique(3);
  Instance j{Fact("E", {V(100), V(0)}), Fact("E", {V(100), V(1)}),
             Fact("E", {V(100), V(2)})};
  ASSERT_TRUE(IsDomainDistinctFrom(j, i));
  Result<std::optional<Counterexample>> r = CheckPair(*q, i, j);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->has_value());
  // In M^2_distinct (bounded exhaustive evidence).
  ExhaustiveOptions o;
  o.domain_size = 3;
  o.max_facts_i = 4;
  o.fresh_values = 2;
  o.max_facts_j = 2;
  EXPECT_FALSE(Violates(*q, MonotonicityClass::kDomainDistinct, o));
}

// Theorem 3.1(5): Q^{i+1}_clique in M^i_disjoint: disjoint edges cannot
// touch old cliques at all, and i edges cannot build an (i+2)-clique.
TEST(HierarchyTest, Clique3InM2Disjoint) {
  auto q = MakeCliqueQuery(3);
  ExhaustiveOptions o;
  o.domain_size = 3;
  o.max_facts_i = 3;
  o.fresh_values = 3;
  o.max_facts_j = 2;
  EXPECT_FALSE(Violates(*q, MonotonicityClass::kDomainDisjoint, o));
  // ... but 3 disjoint edges build a fresh triangle: not in M^3_disjoint.
  Instance i{Fact("E", {V(0), V(1)})};
  Instance j = workload::Cycle(3, /*base=*/100);
  Result<std::optional<Counterexample>> r = CheckPair(*q, i, j);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->has_value());
}

// ---------------------------------------------------------------------------
// Theorem 3.1(4,6): the star ladder
// ---------------------------------------------------------------------------

TEST(HierarchyTest, Star2InM1DisjointButNotM2Disjoint) {
  auto q = MakeStarQuery(2);  // i = 1: Q^{i+1}
  ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 2;
  o.fresh_values = 3;
  o.max_facts_j = 1;  // M^1_disjoint
  EXPECT_FALSE(Violates(*q, MonotonicityClass::kDomainDisjoint, o));
  o.max_facts_j = 2;  // M^2_disjoint: two fresh edges sharing a center
  EXPECT_TRUE(Violates(*q, MonotonicityClass::kDomainDisjoint, o));
}

// Theorem 3.1(6): Q^{j+1}_star not in M^i_distinct even for i = 1: one
// domain-distinct edge extends an old star.
TEST(HierarchyTest, Star2NotInM1Distinct) {
  auto q = MakeStarQuery(2);
  ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 1;
  o.fresh_values = 1;
  o.max_facts_j = 1;
  EXPECT_TRUE(Violates(*q, MonotonicityClass::kDomainDistinct, o));
}

// ---------------------------------------------------------------------------
// Theorem 3.1(7): Q^j_duplicate
// ---------------------------------------------------------------------------

TEST(HierarchyTest, Duplicate2InM1DistinctNotInM2Disjoint) {
  auto q = MakeDuplicateQuery(2);
  ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 2;
  o.fresh_values = 2;
  o.max_facts_j = 1;  // M^1_distinct: one fact cannot replicate across both
  EXPECT_FALSE(Violates(*q, MonotonicityClass::kDomainDistinct, o));
  // Not in M^2_disjoint: J = {R1(c,d), R2(c,d)}.
  Instance i{Fact("R1", {V(0), V(1)})};
  Instance j{Fact("R1", {V(100), V(101)}), Fact("R2", {V(100), V(101)})};
  ASSERT_TRUE(IsDomainDisjointFrom(j, i));
  Result<std::optional<Counterexample>> r = CheckPair(*q, i, j);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->has_value());
}

// ---------------------------------------------------------------------------
// Win-move: non-monotone but domain-disjoint-monotone
// ---------------------------------------------------------------------------

TEST(WinMoveTest, NotInMdistinct) {
  auto q = MakeWinMove();
  ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 1;
  o.fresh_values = 1;
  o.max_facts_j = 1;
  // Move(0,1) makes 0 won; adding Move(1, c) makes 1 won and retracts 0.
  EXPECT_TRUE(Violates(*q, MonotonicityClass::kDomainDistinct, o));
}

TEST(WinMoveTest, InMdisjointBounded) {
  auto q = MakeWinMove();
  ExhaustiveOptions o;
  o.domain_size = 3;
  o.max_facts_i = 3;
  o.fresh_values = 2;
  o.max_facts_j = 3;
  EXPECT_FALSE(Violates(*q, MonotonicityClass::kDomainDisjoint, o));
  RandomOptions ro;
  ro.trials = 100;
  Result<std::optional<Counterexample>> r =
      FindViolationRandom(*q, MonotonicityClass::kDomainDisjoint, ro);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
}

// ---------------------------------------------------------------------------
// Theorem 3.1(2): M = M^i — a query monotone for singleton additions is
// monotone outright (checked on specimens: bounded j=1 no violation implies
// none at j=3 either for actually-monotone queries; and a non-monotone query
// already fails at j=1).
// ---------------------------------------------------------------------------

TEST(HierarchyTest, BoundedMonotonicityCollapses) {
  auto tc = MakeTransitiveClosure();
  auto star = MakeStarQuery(2);
  ExhaustiveOptions o1 = Small();
  o1.max_facts_j = 1;
  ExhaustiveOptions o3 = Small();
  o3.max_facts_j = 3;
  EXPECT_FALSE(Violates(*tc, MonotonicityClass::kMonotone, o1));
  EXPECT_FALSE(Violates(*tc, MonotonicityClass::kMonotone, o3));
  EXPECT_TRUE(Violates(*star, MonotonicityClass::kMonotone, o1));
}

// ---------------------------------------------------------------------------
// Lemma 3.2: H ( Hinj = M ( E = Mdistinct, on specimen queries
// ---------------------------------------------------------------------------

bool ViolatesPreservation(const Query& q, PreservationClass cls,
                          PreservationOptions opts) {
  Result<std::optional<PreservationViolation>> r =
      FindPreservationViolation(q, cls, opts);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() && r->has_value();
}

TEST(PreservationTest, TcPreservedUnderEverything) {
  auto q = MakeTransitiveClosure();
  PreservationOptions o;
  o.domain_size = 2;
  o.max_facts = 2;
  EXPECT_FALSE(ViolatesPreservation(*q, PreservationClass::kHomomorphisms, o));
  EXPECT_FALSE(
      ViolatesPreservation(*q, PreservationClass::kInjectiveHomomorphisms, o));
  EXPECT_FALSE(ViolatesPreservation(*q, PreservationClass::kExtensions, o));
}

TEST(PreservationTest, InequalityQuerySeparatesHFromHinj) {
  // O(x, y) := E(x, y) with x != y: in Hinj (and M) but not in H — a
  // non-injective homomorphism can collapse the endpoints.
  NativeQuery q("non-loop-edges", Schema({{"E", 2}}), Schema({{"O", 2}}),
                [](const Instance& in) -> Result<Instance> {
                  Instance out;
                  for (const Tuple& t : in.TuplesOf(InternName("E"))) {
                    if (t[0] != t[1]) out.Insert(Fact("O", t));
                  }
                  return out;
                });
  PreservationOptions o;
  o.domain_size = 2;
  o.max_facts = 2;
  EXPECT_TRUE(ViolatesPreservation(q, PreservationClass::kHomomorphisms, o));
  EXPECT_FALSE(
      ViolatesPreservation(q, PreservationClass::kInjectiveHomomorphisms, o));
}

TEST(PreservationTest, HinjMatchesMonotoneOnSpecimens) {
  // Hinj = M: violations coincide on specimens from both sides.
  auto tc = MakeTransitiveClosure();     // in both
  auto qtc = MakeComplementTransitiveClosure();  // in neither
  PreservationOptions po;
  po.domain_size = 2;
  po.max_facts = 2;
  ExhaustiveOptions mo = Small();
  EXPECT_FALSE(
      ViolatesPreservation(*tc, PreservationClass::kInjectiveHomomorphisms, po));
  EXPECT_FALSE(Violates(*tc, MonotonicityClass::kMonotone, mo));
  EXPECT_TRUE(ViolatesPreservation(
      *qtc, PreservationClass::kInjectiveHomomorphisms, po));
  EXPECT_TRUE(Violates(*qtc, MonotonicityClass::kMonotone, mo));
}

TEST(PreservationTest, ExtensionsMatchesMdistinctOnSpecimens) {
  // E = Mdistinct: Q_TC violates both; two-hop violates neither.
  auto qtc = MakeComplementTransitiveClosure();
  auto hop = MakeTwoHopJoin();
  PreservationOptions po;
  po.domain_size = 3;
  po.max_facts = 3;
  ExhaustiveOptions mo = Small();
  EXPECT_TRUE(ViolatesPreservation(*qtc, PreservationClass::kExtensions, po));
  EXPECT_TRUE(Violates(*qtc, MonotonicityClass::kDomainDistinct, mo));
  EXPECT_FALSE(ViolatesPreservation(*hop, PreservationClass::kExtensions, po));
  EXPECT_FALSE(Violates(*hop, MonotonicityClass::kDomainDistinct, mo));
}

// ---------------------------------------------------------------------------
// Section 5: Datalog fragments vs. monotonicity classes
// ---------------------------------------------------------------------------

TEST(FragmentMembershipTest, SemiconProgramInMdisjoint) {
  // Theorem 5.3: Q_TC's semicon program never violates Mdisjoint.
  datalog::DatalogQuery q = queries::ComplementTcProgram();
  EXPECT_TRUE(q.fragment().semi_connected);
  ExhaustiveOptions o = Small();
  EXPECT_FALSE(Violates(q, MonotonicityClass::kDomainDisjoint, o));
}

TEST(FragmentMembershipTest, P1InMdisjointNotMdistinct) {
  datalog::DatalogQuery p1 = queries::Example51P1();
  EXPECT_TRUE(p1.fragment().connected_stratified);
  ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 1;
  o.fresh_values = 1;
  o.max_facts_j = 2;
  // Paper: P1({E(a,b)}) != empty but adding E(b,c), E(c,a) kills it.
  EXPECT_TRUE(Violates(p1, MonotonicityClass::kDomainDistinct, o));
  ExhaustiveOptions od = Small();
  od.fresh_values = 3;
  od.max_facts_j = 3;
  EXPECT_FALSE(Violates(p1, MonotonicityClass::kDomainDisjoint, od));
}

TEST(FragmentMembershipTest, P2NotInMdisjoint) {
  datalog::DatalogQuery p2 = queries::Example51P2();
  EXPECT_FALSE(p2.fragment().semi_connected);
  // Witness: one triangle, plus a disjoint triangle.
  Instance i = workload::Cycle(3);
  Instance j = workload::Cycle(3, /*base=*/100);
  Result<std::optional<Counterexample>> r = CheckPair(p2, i, j);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->has_value());
}

// ---------------------------------------------------------------------------
// Lemma 5.2: distribution over components
// ---------------------------------------------------------------------------

TEST(ComponentsPropertyTest, ConnectedProgramDistributes) {
  datalog::DatalogQuery p1 = queries::Example51P1();
  ComponentsCheckOptions o;
  o.trials = 25;
  Result<std::optional<ComponentsViolation>> r =
      FindComponentsViolationRandom(p1, o);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->has_value()) << r->value().ToString();
}

TEST(ComponentsPropertyTest, TcDistributes) {
  auto tc = MakeTransitiveClosure();
  ComponentsCheckOptions o;
  o.trials = 25;
  Result<std::optional<ComponentsViolation>> r =
      FindComponentsViolationRandom(*tc, o);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
}

TEST(ComponentsPropertyTest, ComplementTcDoesNotDistribute) {
  // Q_TC outputs cross-component pairs, so condition (2) fails.
  auto qtc = MakeComplementTransitiveClosure();
  Instance i{Fact("E", {V(0), V(1)}), Fact("E", {V(10), V(11)})};
  Result<std::optional<ComponentsViolation>> r =
      CheckDistributesOverComponents(*qtc, i);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->has_value());
}

TEST(ComponentsPropertyTest, P2DoesNotDistribute) {
  datalog::DatalogQuery p2 = queries::Example51P2();
  // Two disjoint triangles: whole-input output empty, per-component not.
  Instance i = Instance::Union(workload::Cycle(3), workload::Cycle(3, 100));
  Result<std::optional<ComponentsViolation>> r =
      CheckDistributesOverComponents(p2, i);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->has_value());
}

}  // namespace
}  // namespace calm::monotonicity
