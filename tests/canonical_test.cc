// The genericity-aware symmetry reduction (base/canonical.h,
// base/enumerator.h, base/result_cache.h) and its wiring into the exhaustive
// checkers. The load-bearing contracts:
//   * the canonical form is invariant under value permutations,
//   * orbit representatives and orbit sizes match a brute-force grouping of
//     the full instance stream,
//   * reduced sweeps return byte-identical verdicts AND counterexamples to
//     the full sweeps on every Figure 1/2 query at the seed bounds,
//   * a non-generic query is caught by the probe and falls back to the full
//     sweep (with the violation the reduction would have missed still found).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/canonical.h"
#include "base/enumerator.h"
#include "base/instance.h"
#include "base/query.h"
#include "base/result_cache.h"
#include "monotonicity/checker.h"
#include "monotonicity/ladder.h"
#include "monotonicity/preservation.h"
#include "queries/graph_queries.h"
#include "workload/instance_gen.h"

namespace calm {
namespace {

using monotonicity::ComputeLadder;
using monotonicity::Counterexample;
using monotonicity::ExhaustiveOptions;
using monotonicity::FindPreservationViolation;
using monotonicity::FindViolation;
using monotonicity::Ladder;
using monotonicity::MonotonicityClass;
using monotonicity::MonotonicityClassName;
using monotonicity::PreservationClass;
using monotonicity::PreservationOptions;
using monotonicity::PreservationViolation;

Value V(uint64_t i) { return Value::FromInt(i); }

// ---------------------------------------------------------------------------
// Canonical labeling
// ---------------------------------------------------------------------------

TEST(CanonicalFormTest, EmptyInstance) {
  CanonicalForm form = CanonicalizeInstance(Instance{});
  EXPECT_TRUE(form.facts.empty());
  EXPECT_TRUE(form.to_canonical.empty());
  EXPECT_EQ(form.automorphism_count, 1u);
  EXPECT_EQ(InstanceAutomorphisms(Instance{}).size(), 1u);
}

TEST(CanonicalFormTest, KnownAutomorphismCounts) {
  struct Case {
    std::string label;
    Instance instance;
    uint64_t auts;
  };
  std::vector<Case> cases;
  cases.push_back({"single edge", Instance{Fact("E", {V(0), V(1)})}, 1});
  cases.push_back(
      {"2-cycle", Instance{Fact("E", {V(0), V(1)}), Fact("E", {V(1), V(0)})},
       2});
  cases.push_back({"3-cycle",
                   Instance{Fact("E", {V(0), V(1)}), Fact("E", {V(1), V(2)}),
                            Fact("E", {V(2), V(0)})},
                   3});
  cases.push_back({"two disjoint edges",
                   Instance{Fact("E", {V(0), V(1)}), Fact("E", {V(2), V(3)})},
                   2});
  cases.push_back({"loop", Instance{Fact("E", {V(7), V(7)})}, 1});
  for (const Case& c : cases) {
    CanonicalForm form = CanonicalizeInstance(c.instance);
    EXPECT_EQ(form.automorphism_count, c.auts) << c.label;
    // InstanceAutomorphisms enumerates exactly the |Aut(I)| fixing maps.
    std::vector<std::map<Value, Value>> auts =
        InstanceAutomorphisms(c.instance);
    EXPECT_EQ(auts.size(), c.auts) << c.label;
    for (const std::map<Value, Value>& a : auts) {
      EXPECT_EQ(ApplyValueMap(c.instance, a).AllFacts(),
                c.instance.AllFacts())
          << c.label << ": a claimed automorphism does not fix the instance";
    }
  }
}

TEST(CanonicalFormTest, ToCanonicalWitnessesTheForm) {
  Instance i{Fact("E", {V(10), V(42)}), Fact("E", {V(42), V(42)}),
             Fact("E", {V(42), V(7)})};
  CanonicalForm form = CanonicalizeInstance(i);
  // The witnessing relabeling really produces the canonical fact list...
  EXPECT_EQ(ApplyValueMap(i, form.to_canonical).AllFacts(), form.facts);
  // ...and maps adom(I) onto {0..k-1}.
  std::set<Value> image;
  for (const auto& [from, to] : form.to_canonical) image.insert(to);
  ASSERT_EQ(form.to_canonical.size(), i.ActiveDomain().size());
  ASSERT_EQ(image.size(), form.to_canonical.size());
  for (size_t v = 0; v < image.size(); ++v) EXPECT_TRUE(image.count(V(v)));
}

TEST(CanonicalFormTest, InvariantUnderRandomPermutations) {
  Schema schema({{"E", 2}});
  std::vector<Instance> probes = AllInstances(schema, IntDomain(3), 2);
  // A few instances with scattered values (the checkers' fresh range, gaps).
  probes.push_back(Instance{Fact("E", {V(1000), V(0)}),
                            Fact("E", {V(1001), V(0)}),
                            Fact("E", {V(3), V(1000)})});
  probes.push_back(Instance{Fact("E", {V(5), V(9)}), Fact("E", {V(9), V(5)}),
                            Fact("E", {V(2), V(2)})});
  for (const Instance& i : probes) {
    CanonicalForm base = CanonicalizeInstance(i);
    for (uint64_t seed = 0; seed < 8; ++seed) {
      Instance permuted = ApplyValueMap(i, workload::RandomPermutation(i, seed));
      CanonicalForm got = CanonicalizeInstance(permuted);
      EXPECT_EQ(got.facts, base.facts) << i.ToString() << " seed " << seed;
      EXPECT_EQ(got.automorphism_count, base.automorphism_count)
          << i.ToString() << " seed " << seed;
      EXPECT_EQ(CanonicalKey(got.facts), CanonicalKey(base.facts));
    }
  }
}

// ---------------------------------------------------------------------------
// Orbit-representative enumeration
// ---------------------------------------------------------------------------

void CheckOrbitsAgainstBruteForce(const Schema& schema, size_t domain_size,
                                  size_t max_facts) {
  std::vector<Value> domain = IntDomain(domain_size);
  std::vector<Instance> all = AllInstances(schema, domain, max_facts);

  // Brute force: group the full stream by canonical key; the representative
  // of each orbit is its first (enumeration-order-least) member.
  std::map<std::string, std::vector<size_t>> orbits;  // key -> indices
  for (size_t idx = 0; idx < all.size(); ++idx) {
    orbits[CanonicalKey(CanonicalizeInstance(all[idx]).facts)].push_back(idx);
  }

  std::vector<uint64_t> orbit_sizes;
  std::vector<Instance> reps =
      AllCanonicalInstances(schema, domain, max_facts, &orbit_sizes);
  ASSERT_EQ(reps.size(), orbits.size());
  ASSERT_EQ(orbit_sizes.size(), reps.size());

  uint64_t total = 0;
  std::set<std::string> seen;
  for (size_t r = 0; r < reps.size(); ++r) {
    std::string key = CanonicalKey(CanonicalizeInstance(reps[r]).facts);
    ASSERT_TRUE(orbits.count(key)) << reps[r].ToString();
    ASSERT_TRUE(seen.insert(key).second)
        << "orbit emitted twice: " << reps[r].ToString();
    const std::vector<size_t>& members = orbits[key];
    // The representative is the enumeration-least orbit member — this is the
    // property that makes reduced-sweep counterexamples byte-identical.
    EXPECT_EQ(reps[r].AllFacts(), all[members.front()].AllFacts());
    EXPECT_EQ(orbit_sizes[r], members.size());
    total += orbit_sizes[r];
  }
  EXPECT_EQ(total, all.size());

  // Representatives come out in the full stream's enumeration order.
  std::vector<Instance> streamed;
  ForEachCanonicalInstance(schema, domain, max_facts,
                           [&](const Instance& i, uint64_t) {
                             streamed.push_back(i);
                             return true;
                           });
  ASSERT_EQ(streamed.size(), reps.size());
  for (size_t r = 0; r < reps.size(); ++r) {
    EXPECT_EQ(streamed[r].AllFacts(), reps[r].AllFacts());
  }
}

TEST(CanonicalEnumeratorTest, OrbitCountsMatchBruteForce) {
  CheckOrbitsAgainstBruteForce(Schema({{"E", 2}}), 2, 3);
  CheckOrbitsAgainstBruteForce(Schema({{"E", 2}}), 3, 2);
  CheckOrbitsAgainstBruteForce(Schema({{"V", 1}, {"W", 1}}), 3, 3);
  CheckOrbitsAgainstBruteForce(Schema({{"S", 1}, {"R", 2}}), 2, 2);
}

TEST(CanonicalEnumeratorTest, FactIndexPermutationsMatchValueMaps) {
  std::vector<Fact> facts = {Fact("E", {V(0), V(1)}), Fact("E", {V(1), V(0)}),
                             Fact("E", {V(0), V(0)}), Fact("E", {V(1), V(1)})};
  // The 0<->1 swap permutes the list; a map off the fact values is dropped.
  std::map<Value, Value> swap01{{V(0), V(1)}, {V(1), V(0)}};
  std::map<Value, Value> away{{V(0), V(5)}, {V(1), V(0)}};
  std::map<Value, Value> identity{{V(0), V(0)}, {V(1), V(1)}};
  std::vector<std::vector<uint32_t>> perms =
      FactIndexPermutations(facts, {swap01, away, identity});
  ASSERT_EQ(perms.size(), 1u);  // identity and non-closed map dropped
  for (size_t fi = 0; fi < facts.size(); ++fi) {
    Fact mapped = facts[fi];
    for (Value& v : mapped.args) v = swap01.at(v);
    EXPECT_EQ(facts[perms[0][fi]], mapped);
  }
}

// ---------------------------------------------------------------------------
// Reduced sweeps vs full sweeps on the Figure 1/2 queries
// ---------------------------------------------------------------------------

std::string Render(const Result<std::optional<Counterexample>>& r) {
  if (!r.ok()) return "error: " + r.status().ToString();
  if (!r->has_value()) return "no violation";
  return r->value().ToString();
}

struct Scenario {
  std::string label;
  std::unique_ptr<Query> query;
  MonotonicityClass cls;
  ExhaustiveOptions opts;
};

ExhaustiveOptions Opts(size_t domain, size_t facts_i, size_t fresh,
                       size_t facts_j) {
  ExhaustiveOptions o;
  o.domain_size = domain;
  o.max_facts_i = facts_i;
  o.fresh_values = fresh;
  o.max_facts_j = facts_j;
  o.threads = 1;
  return o;
}

// The bench configurations of Theorem 3.1 items (1)-(7), plus the remaining
// Figure 1/2 specimens (triangles-unless-two-disjoint, win-move, two-hop).
std::vector<Scenario> Figure12Scenarios() {
  std::vector<Scenario> s;
  s.push_back({"(1) Q_TC Mdistinct", queries::MakeComplementTransitiveClosure(),
               MonotonicityClass::kDomainDistinct, Opts(2, 3, 2, 3)});
  s.push_back({"(1) Q_TC Mdisjoint", queries::MakeComplementTransitiveClosure(),
               MonotonicityClass::kDomainDisjoint, Opts(2, 3, 2, 3)});
  for (size_t jmax : {1u, 3u}) {
    s.push_back({"(2) TC M^" + std::to_string(jmax),
                 queries::MakeTransitiveClosure(), MonotonicityClass::kMonotone,
                 Opts(2, 2, 1, jmax)});
  }
  for (size_t i : {1u, 2u}) {
    s.push_back({"(3) clique i=" + std::to_string(i),
                 queries::MakeCliqueQuery(i + 2),
                 MonotonicityClass::kDomainDistinct,
                 Opts(i + 2, i <= 1 ? (i + 1) * i + 1 : 3, 1, i)});
    s.push_back({"(3) clique i=" + std::to_string(i) + " violated",
                 queries::MakeCliqueQuery(i + 2),
                 MonotonicityClass::kDomainDistinct,
                 Opts(i + 2, i <= 1 ? (i + 1) * i + 1 : 3, 1, i + 1)});
  }
  for (size_t i : {1u, 2u}) {
    s.push_back({"(4) star i=" + std::to_string(i),
                 queries::MakeStarQuery(i + 1),
                 MonotonicityClass::kDomainDisjoint, Opts(2, 2, i + 1, i)});
  }
  s.push_back({"(5) clique3 disjoint", queries::MakeCliqueQuery(3),
               MonotonicityClass::kDomainDisjoint, Opts(3, 3, 2, 2)});
  s.push_back({"(5) clique3 distinct", queries::MakeCliqueQuery(3),
               MonotonicityClass::kDomainDistinct, Opts(3, 3, 2, 2)});
  s.push_back({"(6) star2 distinct", queries::MakeStarQuery(2),
               MonotonicityClass::kDomainDistinct, Opts(2, 1, 1, 1)});
  for (size_t j : {2u, 3u}) {
    s.push_back({"(7) dup j=" + std::to_string(j) + " distinct",
                 queries::MakeDuplicateQuery(j),
                 MonotonicityClass::kDomainDistinct, Opts(2, 2, 2, j - 1)});
    s.push_back({"(7) dup j=" + std::to_string(j) + " disjoint",
                 queries::MakeDuplicateQuery(j),
                 MonotonicityClass::kDomainDisjoint, Opts(2, 2, 2, j)});
  }
  s.push_back({"triangles-unless-2-disjoint",
               queries::MakeTrianglesUnlessTwoDisjoint(),
               MonotonicityClass::kDomainDisjoint, Opts(3, 3, 3, 2)});
  s.push_back({"win-move disjoint", queries::MakeWinMove(),
               MonotonicityClass::kDomainDisjoint, Opts(2, 3, 2, 2)});
  s.push_back({"win-move distinct", queries::MakeWinMove(),
               MonotonicityClass::kDomainDistinct, Opts(2, 2, 2, 2)});
  s.push_back({"two-hop monotone", queries::MakeTwoHopJoin(),
               MonotonicityClass::kMonotone, Opts(2, 2, 2, 2)});
  return s;
}

TEST(ReducedSweepTest, FindViolationMatchesFullSweepOnFigure12Queries) {
  for (Scenario& s : Figure12Scenarios()) {
    ExhaustiveOptions full = s.opts;
    full.symmetry = SymmetryMode::kOff;
    std::string expected = Render(FindViolation(*s.query, s.cls, full));

    for (SymmetryMode mode : {SymmetryMode::kForceOn, SymmetryMode::kAuto}) {
      ExhaustiveOptions reduced = s.opts;
      reduced.symmetry = mode;
      QueryResultCache cache(*s.query);
      reduced.cache = &cache;
      EXPECT_EQ(Render(FindViolation(*s.query, s.cls, reduced)), expected)
          << s.label << " (" << MonotonicityClassName(s.cls) << ", "
          << (mode == SymmetryMode::kAuto ? "auto" : "forced") << ")";
    }
  }
}

TEST(ReducedSweepTest, LadderMatchesFullSweep) {
  struct Case {
    std::unique_ptr<Query> query;
    size_t domain;
    size_t fresh;
  };
  std::vector<Case> cases;
  cases.push_back({queries::MakeCliqueQuery(3), 3, 1});
  cases.push_back({queries::MakeStarQuery(2), 2, 3});
  cases.push_back({queries::MakeComplementTransitiveClosure(), 2, 1});
  for (Case& c : cases) {
    ExhaustiveOptions o;
    o.domain_size = c.domain;
    o.max_facts_i = 3;
    o.fresh_values = c.fresh;
    o.threads = 1;
    o.symmetry = SymmetryMode::kOff;
    Result<Ladder> full = ComputeLadder(*c.query, 3, o);
    ASSERT_TRUE(full.ok()) << c.query->name();
    for (SymmetryMode mode : {SymmetryMode::kForceOn, SymmetryMode::kAuto}) {
      o.symmetry = mode;
      Result<Ladder> reduced = ComputeLadder(*c.query, 3, o);
      ASSERT_TRUE(reduced.ok()) << c.query->name();
      EXPECT_EQ(reduced->ToString(), full->ToString()) << c.query->name();
      ASSERT_EQ(reduced->rows.size(), full->rows.size());
      for (size_t r = 0; r < full->rows.size(); ++r) {
        const auto& fr = full->rows[r];
        const auto& rr = reduced->rows[r];
        for (auto member : {&monotonicity::LadderRow::m_witness,
                            &monotonicity::LadderRow::distinct_witness,
                            &monotonicity::LadderRow::disjoint_witness}) {
          const auto& fw = fr.*member;
          const auto& rw = rr.*member;
          ASSERT_EQ(rw.has_value(), fw.has_value()) << c.query->name();
          if (fw.has_value()) {
            EXPECT_EQ(rw->ToString(), fw->ToString()) << c.query->name();
          }
        }
      }
    }
  }
}

TEST(ReducedSweepTest, PreservationMatchesFullSweep) {
  auto star = queries::MakeStarQuery(2);
  auto tc = queries::MakeTransitiveClosure();
  for (PreservationClass cls :
       {PreservationClass::kHomomorphisms,
        PreservationClass::kInjectiveHomomorphisms,
        PreservationClass::kExtensions}) {
    for (const Query* q : {static_cast<const Query*>(star.get()),
                           static_cast<const Query*>(tc.get())}) {
      PreservationOptions o;
      o.domain_size = 2;
      o.max_facts = 2;
      o.threads = 1;
      o.symmetry = SymmetryMode::kOff;
      Result<std::optional<PreservationViolation>> full =
          FindPreservationViolation(*q, cls, o);
      ASSERT_TRUE(full.ok()) << q->name();
      for (SymmetryMode mode : {SymmetryMode::kForceOn, SymmetryMode::kAuto}) {
        o.symmetry = mode;
        Result<std::optional<PreservationViolation>> reduced =
            FindPreservationViolation(*q, cls, o);
        ASSERT_TRUE(reduced.ok()) << q->name();
        ASSERT_EQ(reduced->has_value(), full->has_value()) << q->name();
        if (full->has_value()) {
          EXPECT_EQ(reduced->value().ToString(), full->value().ToString())
              << q->name();
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Genericity probe and the non-generic fallback
// ---------------------------------------------------------------------------

TEST(GenericityProbeTest, GenericQueriesPass) {
  EXPECT_TRUE(ProbeGenericity(*queries::MakeTransitiveClosure(), 2, 2).ok());
  EXPECT_TRUE(
      ProbeGenericity(*queries::MakeComplementTransitiveClosure(), 2, 2).ok());
  EXPECT_TRUE(ProbeGenericity(*queries::MakeCliqueQuery(3), 3, 2).ok());
  EXPECT_TRUE(ProbeGenericity(*queries::MakeWinMove(), 2, 2).ok());
}

// A deliberately non-generic query: Q(I) = {O(0)} iff W(0) is present and
// NOT (V(1001) present while V(1000) absent). It inspects concrete values —
// including the checkers' fresh range — so it is not closed under
// permutations of dom.
std::unique_ptr<Query> MakeNonGenericQuery() {
  return std::make_unique<NativeQuery>(
      "non-generic-specimen", Schema({{"V", 1}, {"W", 1}}),
      Schema({{"O", 1}}), [](const Instance& in) -> Result<Instance> {
        Instance out;
        bool blocked = in.Contains(Fact("V", {V(1001)})) &&
                       !in.Contains(Fact("V", {V(1000)}));
        if (in.Contains(Fact("W", {V(0)})) && !blocked) {
          out.Insert(Fact("O", {V(0)}));
        }
        return out;
      });
}

TEST(GenericityProbeTest, NonGenericQueryIsRejected) {
  EXPECT_FALSE(ProbeGenericity(*MakeNonGenericQuery(), 2, 2).ok());
}

TEST(GenericityProbeTest, NonGenericQueryFallsBackToFullSweep) {
  auto q = MakeNonGenericQuery();
  ExhaustiveOptions o = Opts(2, 2, 2, 1);

  // The full sweep finds the violation: some I containing W(0), extended by
  // J = {V(1001)}, loses the output fact O(0).
  o.symmetry = SymmetryMode::kOff;
  Result<std::optional<Counterexample>> full =
      FindViolation(*q, MonotonicityClass::kDomainDisjoint, o);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->has_value());

  // Forcing the reduction on a non-generic query is unsound: the only
  // violating extension {V(1001)} is pruned as the non-least member of its
  // would-be orbit under the fresh-value swap. This is exactly why the kAuto
  // gate is load-bearing.
  o.symmetry = SymmetryMode::kForceOn;
  Result<std::optional<Counterexample>> forced =
      FindViolation(*q, MonotonicityClass::kDomainDisjoint, o);
  ASSERT_TRUE(forced.ok());
  EXPECT_FALSE(forced->has_value());

  // kAuto detects the non-genericity and runs the full sweep: the violation
  // is still found, byte-identical.
  o.symmetry = SymmetryMode::kAuto;
  Result<std::optional<Counterexample>> fallback =
      FindViolation(*q, MonotonicityClass::kDomainDisjoint, o);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(Render(fallback), Render(full));
}

// ---------------------------------------------------------------------------
// Canonical result cache
// ---------------------------------------------------------------------------

TEST(QueryResultCacheTest, ServesIsomorphicRepeatsFromOneEvaluation) {
  auto tc = queries::MakeTransitiveClosure();
  QueryResultCache cache(*tc);

  std::vector<Instance> isomorphic = {
      Instance{Fact("E", {V(0), V(1)}), Fact("E", {V(1), V(2)})},
      Instance{Fact("E", {V(2), V(0)}), Fact("E", {V(0), V(1)})},
      Instance{Fact("E", {V(7), V(3)}), Fact("E", {V(3), V(9)})},
  };
  for (const Instance& i : isomorphic) {
    Result<Instance> cached = cache.Eval(i);
    Result<Instance> direct = tc->Eval(i);
    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(cached->AllFacts(), direct->AllFacts()) << i.ToString();
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 2u);

  // A non-isomorphic input is a fresh entry.
  Instance other{Fact("E", {V(0), V(0)})};
  ASSERT_TRUE(cache.Eval(other).ok());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(QueryResultCacheTest, EvalFactsAppendsInAscendingOrder) {
  auto tc = queries::MakeTransitiveClosure();
  QueryResultCache cache(*tc);
  Instance i{Fact("E", {V(4), V(2)}), Fact("E", {V(2), V(0)})};
  for (int round = 0; round < 2; ++round) {  // miss, then hit
    std::vector<Fact> direct, cached;
    ASSERT_TRUE(tc->EvalFacts(i, &direct).ok());
    ASSERT_TRUE(cache.EvalFacts(i, &cached).ok());
    EXPECT_EQ(cached, direct);
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(QueryResultCacheTest, ErrorsAreCachedAndReplayed) {
  NativeQuery failing(
      "always-fails", Schema({{"E", 2}}), Schema({{"O", 2}}),
      [](const Instance&) -> Result<Instance> {
        return ResourceExhaustedError("synthetic divergence");
      });
  QueryResultCache cache(failing);
  Instance a{Fact("E", {V(0), V(1)})};
  Instance b{Fact("E", {V(5), V(6)})};  // isomorphic to a
  std::vector<Fact> out;
  Status first = cache.EvalFacts(a, &out);
  Status second = cache.EvalFacts(b, &out);
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(second, first);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace calm
