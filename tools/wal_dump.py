#!/usr/bin/env python3
"""Inspect a calm durable record file (src/base/durable.h).

    wal_dump.py FILE [FILE ...] [--records] [--strict] [--quiet]

Parses the shared on-disk format every persistent artifact uses —
snapshots (calm.snapshot), sweep WALs (calm.sweepwal), durable inboxes
(calm.inbox), classified fuzz corpora (calm.corpus) — verifies the header
and per-record CRC32C checksums, and
reports a torn tail the way LogWriter::Open's replay would repair it.
With --records each record payload is decoded per the file's client tag.

Exit code 0 when every file has a valid header (a torn tail alone is a
crash artifact, not corruption); --strict additionally fails on torn
tails, so CI can assert a file is byte-complete.
"""

import argparse
import struct
import sys

MAGIC = b"CALMDUR1"
FORMAT_VERSION = 1
SNAPSHOT_NO_ARITY = 0xFFFFFFFF

# Fuzz-corpus record kinds and shape names (src/workload/fuzzer.h).
CORPUS_KIND_PROGRAM = 1
CORPUS_KIND_DIVERGENCE = 2
CORPUS_SHAPES = ("positive", "inequality", "semi-positive", "connected",
                 "semi-connected", "stratified", "win-move")

# Sweep-WAL record types (src/monotonicity/sweep_checkpoint.cc).
SWEEP_BEGIN = 1
SWEEP_DONE = 2
SWEEP_STOP_CEX = 3
SWEEP_STOP_ERROR = 4
SWEEP_COMPLETE = 5

# --- CRC32C (Castagnoli, reflected 0x82F63B78) — matches durable::Crc32c ---

_CRC_TABLE = []
for _i in range(256):
    _c = _i
    for _ in range(8):
        _c = (_c >> 1) ^ 0x82F63B78 if _c & 1 else _c >> 1
    _CRC_TABLE.append(_c)


def crc32c(data, seed=0):
    crc = ~seed & 0xFFFFFFFF
    for b in data:
        crc = _CRC_TABLE[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return ~crc & 0xFFFFFFFF


class Corrupt(Exception):
    """The file violates the format (distinct from a repairable torn tail)."""


class Reader:
    """Bounds-checked little-endian reads mirroring durable::ByteReader."""

    def __init__(self, data):
        self.data = data
        self.pos = 0

    def take(self, n):
        if self.pos + n > len(self.data):
            raise Corrupt("short read")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self):
        return self.take(1)[0]

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]

    def string(self):
        return self.take(self.u32()).decode("utf-8", errors="replace")

    def at_end(self):
        return self.pos == len(self.data)


def parse_file(data):
    """Returns (tag, records, valid_bytes, torn) or raises Corrupt.

    Mirrors ReadRecordFile: the header must be intact; a record that runs
    past EOF or fails its CRC ends the valid region (torn tail), and
    `valid_bytes` is where LogWriter::Open would truncate on repair.
    """
    r = Reader(data)
    if r.take(len(MAGIC)) != MAGIC:
        raise Corrupt("bad magic (not a calm durable record file)")
    body_start = r.pos
    version = r.u32()
    tag = r.string()
    crc = r.u32()
    if crc32c(data[body_start:r.pos - 4]) != crc:
        raise Corrupt("header checksum mismatch")
    if version != FORMAT_VERSION:
        raise Corrupt(f"unsupported format version {version}")

    records = []
    valid = r.pos
    torn = False
    while not r.at_end():
        try:
            length = r.u32()
            crc = r.u32()
            payload = r.take(length)
        except Corrupt:
            torn = True
            break
        if crc32c(payload) != crc:
            torn = True
            break
        records.append(payload)
        valid = r.pos
    return tag, records, valid, torn


# --- per-tag payload decoders ------------------------------------------------


def decode_value(r):
    kind = r.u8()
    if kind == 0:
        return r.u64()
    if kind == 1:
        return r.string()
    if kind == 2:
        return f"invented:{r.u64()}"
    raise Corrupt(f"unknown value kind {kind}")


def decode_tuple(r):
    return tuple(decode_value(r) for _ in range(r.u32()))


def describe_inbox(payload, index):
    r = Reader(payload)
    rel = r.string()
    args = decode_tuple(r)
    return f"{rel}{args!r}"


def describe_sweepwal(payload, index):
    r = Reader(payload)
    kind = r.u8()
    if kind == SWEEP_BEGIN:
        return f"Begin space_size={r.u64()}"
    if kind == SWEEP_DONE:
        return f"Done idx={r.u64()}"
    if kind == SWEEP_STOP_CEX:
        return f"StopCex idx={r.u64()}"
    if kind == SWEEP_STOP_ERROR:
        idx = r.u64()
        code = r.u32()
        return f"StopError idx={idx} code={code} message={r.string()!r}"
    if kind == SWEEP_COMPLETE:
        return f"Complete winner={r.u64()}"
    raise Corrupt(f"unknown sweepwal record type {kind}")


def describe_snapshot(payload, index):
    # Snapshot records are positional: meta, dictionary, relations, trailer.
    r = Reader(payload)
    if index == 0:
        return f"meta dict_size={r.u64()} relations={r.u32()}"
    if index == 1:
        return f"dictionary ({len(payload)} bytes)"
    first = r.string()
    if first == "calm.snapshot.end":
        return f"trailer relations={r.u32()}"
    arity = r.u32()
    if arity == SNAPSHOT_NO_ARITY:
        return f"relation {first} (arity unset)"
    return f"relation {first} arity={arity} rows={r.u32()}"


def describe_corpus(payload, index):
    # Classified fuzz-corpus records (src/workload/fuzzer.cc). The fixed
    # prefix is decoded here; the trailing ladder rows carry full instance
    # witnesses and are summarized by row count only.
    r = Reader(payload)
    kind = r.u8()
    if kind == CORPUS_KIND_DIVERGENCE:
        seed = r.u64()
        stage = r.string()
        detail = r.string()
        head = detail.splitlines()[0] if detail else ""
        if len(head) > 60:
            head = head[:57] + "..."
        return f"divergence seed={seed} stage={stage} detail={head!r}"
    if kind != CORPUS_KIND_PROGRAM:
        raise Corrupt(f"unknown corpus record kind {kind}")
    seed = r.u64()
    shape = r.u8()
    shape_name = (CORPUS_SHAPES[shape] if shape < len(CORPUS_SHAPES)
                  else f"shape#{shape}")
    wf = r.u8()
    fragment = r.string()
    bucket = r.string()
    strategy = r.string()
    conformant = r.u8()
    supersteps = r.u64()
    derived = r.u64()
    r.u64()  # fixpoint rounds
    r.u64()  # rule applications
    text = r.string()
    rows = r.u32()
    rules = sum(1 for line in text.splitlines() if ":-" in line)
    return (f"program seed={seed} shape={shape_name} fragment={fragment} "
            f"class={bucket}{' wf' if wf else ''} rules={rules} "
            f"ladder_rows={rows} strategy={strategy or '-'} "
            f"bsp_supersteps={supersteps} derived={derived} "
            f"conformant={'yes' if conformant else 'NO'}")


DESCRIBERS = {
    "calm.inbox": describe_inbox,
    "calm.sweepwal": describe_sweepwal,
    "calm.snapshot": describe_snapshot,
    "calm.corpus": describe_corpus,
}


def describe_record(tag, payload, index):
    describer = DESCRIBERS.get(tag)
    if describer is None:
        return f"{len(payload)} bytes"
    try:
        return describer(payload, index)
    except Corrupt as err:
        return f"{len(payload)} bytes (undecodable as {tag}: {err})"


def dump(path, show_records, quiet):
    """Returns (header_ok, torn)."""
    with open(path, "rb") as f:
        data = f.read()
    try:
        tag, records, valid, torn = parse_file(data)
    except Corrupt as err:
        print(f"{path}: CORRUPT: {err}")
        return False, False
    if not quiet:
        state = (f"TORN TAIL at byte {valid} "
                 f"({len(data) - valid} trailing bytes would be truncated)"
                 if torn else "clean")
        print(f"{path}: tag={tag} version={FORMAT_VERSION} "
              f"records={len(records)} bytes={len(data)} [{state}]")
        if show_records:
            for i, payload in enumerate(records):
                print(f"  [{i}] {describe_record(tag, payload, i)}")
    return True, torn


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="+", help="record files to inspect")
    ap.add_argument("--records", action="store_true",
                    help="decode and print each record payload")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on a torn tail, not just on corruption")
    ap.add_argument("--quiet", action="store_true",
                    help="no per-file output; exit status only")
    args = ap.parse_args(argv)

    failed = False
    for path in args.files:
        try:
            header_ok, torn = dump(path, args.records, args.quiet)
        except OSError as err:
            print(f"{path}: {err}")
            failed = True
            continue
        if not header_ok or (args.strict and torn):
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
