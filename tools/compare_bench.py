#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--threshold 2.0]

Exits nonzero when any benchmark present in the baseline is missing from the
current run or has regressed by more than the threshold factor on cpu_time.
Benchmarks only present in the current run are reported but do not fail the
comparison (add them to the baseline when they stabilize). Absolute times
differ across machines; the wide default threshold is meant to catch
order-of-magnitude regressions (e.g. losing the prepared-program fast path),
not minor noise. Stdlib only, so it runs anywhere CI has python3.
"""

import argparse
import json
import sys


def load_cpu_times(path):
    """Returns {name: (cpu_time, time_unit)} for non-aggregate entries."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        times[bench["name"]] = (
            float(bench["cpu_time"]),
            bench.get("time_unit", "ns"),
        )
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when current cpu_time > threshold * baseline (default 2.0)",
    )
    args = parser.parse_args()

    baseline = load_cpu_times(args.baseline)
    current = load_cpu_times(args.current)
    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline}")
        return 2

    failures = []
    for name in sorted(baseline):
        base_t, unit = baseline[name]
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        cur_t, _ = current[name]
        ratio = cur_t / base_t if base_t > 0 else float("inf")
        status = "FAIL" if ratio > args.threshold else "ok"
        print(
            f"{status:4} {name}: {base_t:.2f} {unit} -> {cur_t:.2f} {unit} "
            f"({ratio:.2f}x)"
        )
        if ratio > args.threshold:
            failures.append(f"{name}: {ratio:.2f}x slower (> {args.threshold}x)")

    for name in sorted(set(current) - set(baseline)):
        cur_t, unit = current[name]
        print(f"new  {name}: {cur_t:.2f} {unit} (not in baseline)")

    if failures:
        print(f"\n{len(failures)} regression(s) beyond {args.threshold}x:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nall {len(baseline)} benchmarks within {args.threshold}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
