#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--threshold 2.0] [--strict]
                     [--summary PATH]

Exits nonzero only on real regressions: a benchmark present in both files
whose cpu_time grew by more than the threshold factor. Names present in only
one of the two files are warned about and skipped — a baseline refreshed with
new entries must not fail CI runs filtered to an older benchmark set, and
vice versa (add/remove names from the baseline when the set stabilizes).
With --strict, a baseline name missing from the current run fails instead of
warning: the ratchet legs run the full suite, where a silently vanished
benchmark (renamed, or its registration dropped) would otherwise disable its
regression gate without anyone noticing.
Absolute times
differ across machines; the wide default threshold is meant to catch
order-of-magnitude regressions (e.g. losing the prepared-program fast path),
not minor noise. Stdlib only, so it runs anywhere CI has python3.

--summary PATH appends a GitHub-flavored markdown table of the top-5
improvements and top-5 regressions (by cpu-time ratio) to PATH — CI passes
"$GITHUB_STEP_SUMMARY" so the movers show up on the job page without digging
through the log.
"""

import argparse
import json
import sys


def load_cpu_times(path):
    """Returns {name: (cpu_time, time_unit)} for non-aggregate entries."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        times[bench["name"]] = (
            float(bench["cpu_time"]),
            bench.get("time_unit", "ns"),
        )
    return times


def format_summary(baseline, current, top_n=5):
    """Markdown table of the top movers: the `top_n` biggest improvements
    (lowest current/baseline cpu-time ratio, and only when actually < 1)
    and the `top_n` biggest regressions (highest ratio > 1). Benchmarks in
    only one of the two runs don't have a ratio and are left out."""
    rows = []
    for name in sorted(set(baseline) & set(current)):
        base_t, unit = baseline[name]
        cur_t, _ = current[name]
        ratio = cur_t / base_t if base_t > 0 else float("inf")
        rows.append((name, base_t, cur_t, unit, ratio))

    improvements = sorted((r for r in rows if r[4] < 1.0), key=lambda r: r[4])
    regressions = sorted((r for r in rows if r[4] > 1.0), key=lambda r: -r[4])

    def table(title, entries):
        lines = [f"### {title}", ""]
        if not entries:
            lines += ["_none_", ""]
            return lines
        lines += [
            "| benchmark | baseline | current | ratio |",
            "|---|---:|---:|---:|",
        ]
        for name, base_t, cur_t, unit, ratio in entries:
            lines.append(
                f"| `{name}` | {base_t:.2f} {unit} | {cur_t:.2f} {unit} "
                f"| {ratio:.2f}x |"
            )
        lines.append("")
        return lines

    lines = ["## Benchmark comparison", ""]
    lines += table(f"Top {top_n} improvements", improvements[:top_n])
    lines += table(f"Top {top_n} regressions", regressions[:top_n])
    return "\n".join(lines) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when current cpu_time > threshold * baseline (default 2.0)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail when a baseline benchmark is missing from the current run",
    )
    parser.add_argument(
        "--summary",
        metavar="PATH",
        help="append a markdown top-5 improvements/regressions table to PATH "
        "(pass $GITHUB_STEP_SUMMARY in CI)",
    )
    args = parser.parse_args(argv)

    baseline = load_cpu_times(args.baseline)
    current = load_cpu_times(args.current)
    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline}")
        return 2

    failures = []
    compared = 0
    for name in sorted(baseline):
        base_t, unit = baseline[name]
        if name not in current:
            if args.strict:
                print(f"FAIL {name}: in baseline but missing from current run")
                failures.append(f"{name}: missing from current run (--strict)")
            else:
                print(
                    f"warn {name}: in baseline but missing from current run; "
                    "skipped"
                )
            continue
        compared += 1
        cur_t, _ = current[name]
        ratio = cur_t / base_t if base_t > 0 else float("inf")
        status = "FAIL" if ratio > args.threshold else "ok"
        print(
            f"{status:4} {name}: {base_t:.2f} {unit} -> {cur_t:.2f} {unit} "
            f"({ratio:.2f}x)"
        )
        if ratio > args.threshold:
            failures.append(f"{name}: {ratio:.2f}x slower (> {args.threshold}x)")

    for name in sorted(set(current) - set(baseline)):
        cur_t, unit = current[name]
        print(f"new  {name}: {cur_t:.2f} {unit} (not in baseline; skipped)")

    if args.summary:
        with open(args.summary, "a") as f:
            f.write(format_summary(baseline, current))

    if failures:
        print(f"\n{len(failures)} failure(s) against {args.baseline}:")
        for f in failures:
            print(f"  {f}")
        return 1
    if compared == 0:
        print("\nwarning: no benchmark names in common; nothing compared")
        return 0
    print(f"\nall {compared} compared benchmarks within {args.threshold}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
