#!/usr/bin/env python3
"""Summarize a Chrome trace_event file produced with --trace_out.

Usage:
    trace_view.py TRACE.json [--by name|tid] [--top N]

Rolls the trace up per span name (or per thread with --by tid): event count,
total/mean/max duration, and for instants just the count. The full file loads
into chrome://tracing or https://ui.perfetto.dev for the visual timeline;
this gives the numbers at the terminal. Stdlib only.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    with open(path) as f:
        data = json.load(f)
    if isinstance(data, dict):
        return data.get("traceEvents", [])
    # Chrome also accepts a bare array of events.
    return data


def summarize(events, key):
    """Returns {group: {"spans", "instants", "total_us", "max_us"}}."""
    groups = defaultdict(lambda: {"spans": 0, "instants": 0,
                                  "total_us": 0.0, "max_us": 0.0})
    for e in events:
        group = str(e.get("name", "?")) if key == "name" else str(e.get("tid", 0))
        g = groups[group]
        if e.get("ph") == "X":
            dur = float(e.get("dur", 0.0))
            g["spans"] += 1
            g["total_us"] += dur
            g["max_us"] = max(g["max_us"], dur)
        elif e.get("ph") == "i":
            g["instants"] += 1
    return dict(groups)


def format_us(us):
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.1f}us"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("--by", choices=["name", "tid"], default="name",
                        help="group rows by span name (default) or thread id")
    parser.add_argument("--top", type=int, default=0,
                        help="show only the N rows with the most total time")
    args = parser.parse_args(argv)

    events = load_events(args.trace)
    if not events:
        print(f"error: no trace events in {args.trace}")
        return 2

    groups = summarize(events, args.by)
    rows = sorted(groups.items(), key=lambda kv: -kv[1]["total_us"])
    if args.top > 0:
        rows = rows[: args.top]

    width = max(len(k) for k, _ in rows)
    header = f"{'group':<{width}}  {'spans':>8} {'instants':>8} " \
             f"{'total':>10} {'mean':>10} {'max':>10}"
    print(header)
    print("-" * len(header))
    total_spans = total_instants = 0
    for group, g in rows:
        mean = g["total_us"] / g["spans"] if g["spans"] else 0.0
        total_spans += g["spans"]
        total_instants += g["instants"]
        print(f"{group:<{width}}  {g['spans']:>8} {g['instants']:>8} "
              f"{format_us(g['total_us']):>10} {format_us(mean):>10} "
              f"{format_us(g['max_us']):>10}")
    print(f"\n{len(events)} events: {total_spans} spans, "
          f"{total_instants} instants, {len(groups)} groups")
    return 0


if __name__ == "__main__":
    sys.exit(main())
