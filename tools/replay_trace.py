#!/usr/bin/env python3
"""Replay a recorded divergence trace deterministically.

Thin wrapper around `bench_fault_confluence --replay`: locates the bench
binary (or takes --bench), pretty-prints the trace header so you can see
what you are replaying, then hands off to the C++ replayer, which rebuilds
the scenario, re-runs it under the scripted fault plan and recorded
scheduler choices, and checks the outcome is byte-identical to the
recording.

Usage:
  tools/replay_trace.py TRACE.json [--bench PATH]

Exit code is the bench's: 0 iff the trace replays to the recorded outcome.
"""

import argparse
import json
import os
import subprocess
import sys

CANDIDATE_BUILD_DIRS = ("build", "build-rel", "build-asan", "cmake-build-debug")


def find_bench(repo_root):
    for d in CANDIDATE_BUILD_DIRS:
        path = os.path.join(repo_root, d, "bench", "bench_fault_confluence")
        if os.access(path, os.X_OK):
            return path
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="divergence trace JSON (from the oracle)")
    parser.add_argument("--bench", help="path to bench_fault_confluence")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, ValueError) as err:
        print(f"error: cannot read trace: {err}", file=sys.stderr)
        return 2

    scheduler = trace.get("scheduler", {})
    print(f"trace:      {args.trace}")
    print(f"scenario:   {trace.get('scenario', '?')}")
    print(f"scheduler:  {scheduler.get('kind', '?')}"
          f"(seed={scheduler.get('seed', '?')})")
    print(f"events:     {len(trace.get('fault_events', []))} fault events")
    print(f"expected:   {trace.get('expected_output', '?')}")
    print(f"observed:   {trace.get('observed_output', '?')}")
    print()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    bench = args.bench or find_bench(repo_root)
    if bench is None:
        print("error: bench_fault_confluence not found; build it first "
              "(cmake --build build --target bench_fault_confluence) "
              "or pass --bench", file=sys.stderr)
        return 2

    return subprocess.call([bench, "--replay", args.trace])


if __name__ == "__main__":
    sys.exit(main())
