#!/usr/bin/env python3
"""Collapse a repeated google-benchmark JSON run to one median entry per name.

Usage:
    median_bench.py RAW.json OUT.json

With --benchmark_repetitions=N, google-benchmark emits N "iteration" entries
under the same name plus _mean/_median/_stddev aggregates. The baseline format
(and compare_bench.py) wants exactly one entry per name, so this picks, for
each name, the iteration entry whose cpu_time is the median of its
repetitions. Aggregates are dropped; the context block and every other field
of the chosen entry are preserved verbatim. Stdlib only.
"""

import json
import sys


def median_entries(benchmarks):
    """Returns one representative entry per name: the median-cpu_time run."""
    by_name = {}
    for bench in benchmarks:
        if bench.get("run_type") == "aggregate":
            continue
        by_name.setdefault(bench["name"], []).append(bench)
    out = []
    for name in sorted(by_name):
        runs = sorted(by_name[name], key=lambda b: float(b["cpu_time"]))
        # Lower median for even counts: the conservative (faster) pick, so a
        # refreshed baseline never starts looser than the machine can do.
        out.append(runs[(len(runs) - 1) // 2])
    return out


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(__doc__)
        return 2
    with open(argv[0]) as f:
        data = json.load(f)
    data["benchmarks"] = median_entries(data.get("benchmarks", []))
    with open(argv[1], "w") as f:
        json.dump(data, f, indent=2)
        f.write("\n")
    print(f"wrote {len(data['benchmarks'])} median entries to {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
