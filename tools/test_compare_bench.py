"""Tests for compare_bench.py: exit codes, one-sided skips, tolerances.

unittest-style so it runs under `python3 -m unittest` or `python3 -m pytest`
(CI uses pytest); stdlib only, like the tool itself.
"""

import io
import json
import os
import re
import tempfile
import unittest
from contextlib import redirect_stdout

import compare_bench


def bench_json(times):
    """A minimal google-benchmark JSON document: {name: cpu_time_ns}."""
    return {
        "benchmarks": [
            {"name": name, "cpu_time": t, "time_unit": "ns"}
            for name, t in times.items()
        ]
    }


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, filename, doc):
        path = os.path.join(self.dir.name, filename)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_main(self, baseline, current, *extra):
        base = self.write("base.json", bench_json(baseline))
        cur = self.write("cur.json", bench_json(current))
        out = io.StringIO()
        with redirect_stdout(out):
            rc = compare_bench.main([base, cur, *extra])
        return rc, out.getvalue()

    def test_identical_runs_pass(self):
        rc, out = self.run_main({"BM_A": 100.0}, {"BM_A": 100.0})
        self.assertEqual(rc, 0)
        self.assertIn("all 1 compared", out)

    def test_real_regression_fails(self):
        rc, out = self.run_main({"BM_A": 100.0}, {"BM_A": 250.0})
        self.assertEqual(rc, 1)
        self.assertIn("FAIL", out)
        self.assertIn("2.50x", out)

    def test_exactly_at_threshold_passes(self):
        # The contract is strictly-greater-than: 2.00x is not a regression.
        rc, _ = self.run_main({"BM_A": 100.0}, {"BM_A": 200.0})
        self.assertEqual(rc, 0)

    def test_just_over_threshold_fails(self):
        rc, _ = self.run_main({"BM_A": 100.0}, {"BM_A": 201.0})
        self.assertEqual(rc, 1)

    def test_custom_threshold(self):
        rc, _ = self.run_main({"BM_A": 100.0}, {"BM_A": 140.0},
                              "--threshold", "1.5")
        self.assertEqual(rc, 0)
        rc, _ = self.run_main({"BM_A": 100.0}, {"BM_A": 160.0},
                              "--threshold", "1.5")
        self.assertEqual(rc, 1)

    def test_baseline_only_name_warns_and_skips(self):
        rc, out = self.run_main({"BM_A": 100.0, "BM_GONE": 1.0},
                                {"BM_A": 100.0})
        self.assertEqual(rc, 0)
        self.assertIn("warn BM_GONE", out)
        self.assertIn("skipped", out)

    def test_strict_fails_on_baseline_only_name(self):
        rc, out = self.run_main({"BM_A": 100.0, "BM_GONE": 1.0},
                                {"BM_A": 100.0}, "--strict")
        self.assertEqual(rc, 1)
        self.assertIn("FAIL BM_GONE", out)
        self.assertIn("missing from current run (--strict)", out)

    def test_strict_passes_when_all_baseline_names_present(self):
        rc, out = self.run_main({"BM_A": 100.0}, {"BM_A": 100.0}, "--strict")
        self.assertEqual(rc, 0)
        self.assertIn("all 1 compared", out)

    def test_strict_still_allows_current_only_names(self):
        # --strict gates the baseline set only; a fresh benchmark that is not
        # yet in the committed baseline must not fail the ratchet.
        rc, out = self.run_main({"BM_A": 100.0},
                                {"BM_A": 100.0, "BM_NEW": 9e9}, "--strict")
        self.assertEqual(rc, 0)
        self.assertIn("new  BM_NEW", out)

    def test_strict_reports_regressions_and_missing_together(self):
        rc, out = self.run_main({"BM_A": 100.0, "BM_GONE": 1.0},
                                {"BM_A": 300.0}, "--strict")
        self.assertEqual(rc, 1)
        self.assertIn("FAIL BM_A", out)
        self.assertIn("FAIL BM_GONE", out)
        self.assertIn("2 failure(s)", out)

    def test_current_only_name_reported_not_failed(self):
        rc, out = self.run_main({"BM_A": 100.0},
                                {"BM_A": 100.0, "BM_NEW": 9e9})
        self.assertEqual(rc, 0)
        self.assertIn("new  BM_NEW", out)

    def test_no_names_in_common_passes_with_warning(self):
        rc, out = self.run_main({"BM_A": 100.0}, {"BM_B": 100.0})
        self.assertEqual(rc, 0)
        self.assertIn("nothing compared", out)

    def test_empty_baseline_is_an_error(self):
        rc, out = self.run_main({}, {"BM_A": 100.0})
        self.assertEqual(rc, 2)
        self.assertIn("no benchmarks in baseline", out)

    def test_improvement_passes(self):
        rc, out = self.run_main({"BM_A": 100.0}, {"BM_A": 10.0})
        self.assertEqual(rc, 0)
        self.assertIn("0.10x", out)

    def test_aggregate_entries_ignored(self):
        base = self.write("base.json", bench_json({"BM_A": 100.0}))
        doc = bench_json({"BM_A": 100.0})
        doc["benchmarks"].append({
            "name": "BM_A_mean", "cpu_time": 9e9,
            "time_unit": "ns", "run_type": "aggregate",
        })
        cur = self.write("cur.json", doc)
        out = io.StringIO()
        with redirect_stdout(out):
            rc = compare_bench.main([base, cur])
        self.assertEqual(rc, 0)
        self.assertNotIn("BM_A_mean", out.getvalue())

    def test_zero_baseline_time_is_a_regression_when_current_nonzero(self):
        rc, _ = self.run_main({"BM_A": 0.0}, {"BM_A": 5.0})
        self.assertEqual(rc, 1)


class SummaryTableTest(unittest.TestCase):
    """format_summary and the --summary flag: the CI job-summary table."""

    def times(self, d):
        return {name: (t, "ns") for name, t in d.items()}

    def test_top_movers_ranked_and_truncated(self):
        baseline = {f"BM_{i}": 100.0 for i in range(8)}
        # BM_0..BM_7 at ratios 0.1, 0.2, ..., 0.8 — all improvements.
        current = {f"BM_{i}": 100.0 * (i + 1) / 10 for i in range(8)}
        md = compare_bench.format_summary(
            self.times(baseline), self.times(current))
        self.assertIn("Top 5 improvements", md)
        # Best five make the table, in ratio order; sixth-best does not.
        for i in range(5):
            self.assertIn(f"`BM_{i}`", md)
        self.assertNotIn("`BM_5`", md)
        self.assertLess(md.index("`BM_0`"), md.index("`BM_1`"))
        self.assertIn("0.10x", md)

    def test_regressions_ranked_worst_first(self):
        baseline = {"BM_A": 100.0, "BM_B": 100.0, "BM_C": 100.0}
        current = {"BM_A": 150.0, "BM_B": 300.0, "BM_C": 100.0}
        md = compare_bench.format_summary(
            self.times(baseline), self.times(current))
        self.assertIn("Top 5 regressions", md)
        self.assertLess(md.index("`BM_B`"), md.index("`BM_A`"))
        # Unchanged benchmarks (ratio == 1) are neither movers nor losers.
        self.assertNotIn("`BM_C`", md)

    def test_one_sided_names_left_out(self):
        md = compare_bench.format_summary(
            self.times({"BM_A": 100.0, "BM_GONE": 1.0}),
            self.times({"BM_A": 50.0, "BM_NEW": 1.0}))
        self.assertNotIn("BM_GONE", md)
        self.assertNotIn("BM_NEW", md)

    def test_empty_sections_say_none(self):
        md = compare_bench.format_summary(
            self.times({"BM_A": 100.0}), self.times({"BM_A": 100.0}))
        self.assertEqual(md.count("_none_"), 2)

    def test_summary_flag_appends_to_file(self):
        dir = tempfile.TemporaryDirectory()
        self.addCleanup(dir.cleanup)

        def write(filename, doc):
            path = os.path.join(dir.name, filename)
            with open(path, "w") as f:
                json.dump(doc, f)
            return path

        base = write("base.json", bench_json({"BM_A": 100.0, "BM_B": 100.0}))
        cur = write("cur.json", bench_json({"BM_A": 40.0, "BM_B": 100.0}))
        summary = os.path.join(dir.name, "summary.md")
        with open(summary, "w") as f:
            f.write("prior content\n")
        out = io.StringIO()
        with redirect_stdout(out):
            rc = compare_bench.main([base, cur, "--summary", summary])
        self.assertEqual(rc, 0)
        with open(summary) as f:
            text = f.read()
        # Appended, GITHUB_STEP_SUMMARY-style, not overwritten.
        self.assertTrue(text.startswith("prior content\n"))
        self.assertIn("## Benchmark comparison", text)
        self.assertIn("`BM_A`", text)
        self.assertIn("0.40x", text)


class BaselineCoverageTest(unittest.TestCase):
    """The committed engine-perf baseline must line up with the CI filter.

    A baseline entry whose name no longer matches the perf-smoke
    --benchmark_filter would silently lose its regression gate: --strict
    only flags names missing from the *run*, and the run only contains
    names the filter let through. Keep FILTER in sync with the perf-smoke
    and baseline-refresh jobs in .github/workflows/ci.yml.
    """

    FILTER = re.compile(
        r"BM_EvalPrepared|BM_EvalIncrementalOverlay|BM_EvalCompileEveryCall|"
        r"BM_MonotonicityCheck|BM_FindViolation|BM_Ladder|BM_RunToQuiescence|"
        r"BM_ToInstance|BM_DedupInsert")

    def baseline_names(self):
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "bench", "baselines",
                            "BENCH_engine_perf.json")
        with open(path) as f:
            return [e["name"] for e in json.load(f)["benchmarks"]]

    def test_every_baseline_name_matches_ci_filter(self):
        for name in self.baseline_names():
            self.assertRegex(name, self.FILTER)

    def test_incremental_overlay_benchmarks_are_gated(self):
        names = set(self.baseline_names())
        self.assertIn("BM_EvalIncrementalOverlay/8", names)
        self.assertIn("BM_EvalIncrementalOverlay/32", names)
        self.assertIn("BM_FindViolationCanonical", names)


if __name__ == "__main__":
    unittest.main()
