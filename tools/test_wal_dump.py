"""Tests for wal_dump.py against hand-assembled record files.

The files are built here with raw struct packing (not wal_dump's own
Reader), so the parser is checked against the format spec in
src/base/durable.h rather than against itself; the CRC32C known-answer
vector pins the checksum to the same iSCSI polynomial the C++ side uses.
"""

import struct

import pytest

import wal_dump
from wal_dump import Corrupt, crc32c, parse_file

MAGIC = b"CALMDUR1"


def header(tag, version=1):
    body = struct.pack("<I", version) + struct.pack("<I", len(tag)) + tag
    return MAGIC + body + struct.pack("<I", crc32c(body))


def record(payload):
    return struct.pack("<II", len(payload), crc32c(payload)) + payload


def make_file(tag, payloads, version=1):
    return header(tag, version) + b"".join(record(p) for p in payloads)


def enc_str(s):
    raw = s.encode()
    return struct.pack("<I", len(raw)) + raw


def enc_int_value(v):
    return b"\x00" + struct.pack("<Q", v)


def enc_sym_value(name):
    return b"\x01" + enc_str(name)


def test_crc32c_known_answer():
    # The iSCSI CRC32C check vector — pins the polynomial/reflection/xorout
    # to what src/base/durable.cc computes.
    assert crc32c(b"123456789") == 0xE3069283
    assert crc32c(b"") == 0


def test_clean_file_parses():
    data = make_file(b"calm.test", [b"alpha", b"", b"gamma"])
    tag, records, valid, torn = parse_file(data)
    assert tag == "calm.test"
    assert records == [b"alpha", b"", b"gamma"]
    assert valid == len(data)
    assert not torn


def test_trailing_garbage_is_a_torn_tail():
    clean = make_file(b"calm.test", [b"alpha"])
    data = clean + b"\x05\x00\x00\x00junk"
    tag, records, valid, torn = parse_file(data)
    assert records == [b"alpha"]
    assert torn
    assert valid == len(clean)


def test_corrupted_record_crc_ends_the_valid_region():
    r1, r2 = record(b"alpha"), record(b"beta")
    data = header(b"calm.test") + r1 + r2
    flipped = bytearray(data)
    flipped[-1] ^= 0xFF  # damage r2's payload
    tag, records, valid, torn = parse_file(bytes(flipped))
    assert records == [b"alpha"]
    assert torn
    assert valid == len(header(b"calm.test")) + len(r1)


def test_truncation_at_every_byte_offset():
    data = make_file(b"calm.test", [b"one", b"two", b"three"])
    hdr_len = len(header(b"calm.test"))
    full_records = [b"one", b"two", b"three"]
    boundaries = [hdr_len]
    for p in full_records:
        boundaries.append(boundaries[-1] + len(record(p)))
    for cut in range(len(data)):
        prefix = data[:cut]
        if cut < hdr_len:
            with pytest.raises(Corrupt):
                parse_file(prefix)
            continue
        tag, records, valid, torn = parse_file(prefix)
        assert records == full_records[:len(records)]
        assert torn == (cut not in boundaries)
        assert valid == max(b for b in boundaries if b <= cut)


def test_bad_magic_rejected():
    with pytest.raises(Corrupt, match="magic"):
        parse_file(b"NOTCALM!" + make_file(b"t", [])[8:])


def test_header_checksum_mismatch_rejected():
    data = bytearray(make_file(b"calm.test", []))
    data[-1] ^= 0xFF  # damage the header CRC itself
    with pytest.raises(Corrupt, match="header checksum"):
        parse_file(bytes(data))


def test_unsupported_version_rejected():
    with pytest.raises(Corrupt, match="version"):
        parse_file(make_file(b"calm.test", [], version=2))


def test_inbox_record_decoding():
    payload = enc_str("Msg") + struct.pack("<I", 2) + \
        enc_sym_value("anchor") + enc_int_value(7)
    out = wal_dump.describe_record("calm.inbox", payload, 0)
    assert out == "Msg('anchor', 7)"


def test_sweepwal_record_decoding():
    assert wal_dump.describe_record(
        "calm.sweepwal", b"\x01" + struct.pack("<Q", 96), 0) == \
        "Begin space_size=96"
    assert wal_dump.describe_record(
        "calm.sweepwal", b"\x02" + struct.pack("<Q", 5), 1) == "Done idx=5"
    assert wal_dump.describe_record(
        "calm.sweepwal", b"\x05" + struct.pack("<Q", 96), 2) == \
        "Complete winner=96"
    err = b"\x04" + struct.pack("<Q", 3) + struct.pack("<I", 8) + enc_str("disk full")
    assert wal_dump.describe_record("calm.sweepwal", err, 3) == \
        "StopError idx=3 code=8 message='disk full'"


def test_snapshot_positional_decoding():
    meta = struct.pack("<Q", 4) + struct.pack("<I", 2)
    assert wal_dump.describe_record("calm.snapshot", meta, 0) == \
        "meta dict_size=4 relations=2"
    rel = enc_str("E") + struct.pack("<II", 2, 10)
    assert wal_dump.describe_record("calm.snapshot", rel, 2) == \
        "relation E arity=2 rows=10"
    unset = enc_str("F") + struct.pack("<I", 0xFFFFFFFF)
    assert wal_dump.describe_record("calm.snapshot", unset, 3) == \
        "relation F (arity unset)"
    trailer = enc_str("calm.snapshot.end") + struct.pack("<I", 2)
    assert wal_dump.describe_record("calm.snapshot", trailer, 4) == \
        "trailer relations=2"


def _corpus_program_payload():
    # Mirrors EncodeCorpusRecord's fixed prefix (src/workload/fuzzer.cc):
    # kind, seed, shape, wf, fragment, bucket, strategy, conformant,
    # supersteps, three stats counters, text, ladder row count. The row
    # bodies that follow are opaque to the describer.
    return (b"\x01" + struct.pack("<Q", 42) + b"\x02" + b"\x00" +
            enc_str("SP-Datalog") + enc_str("Mdistinct") +
            enc_str("absence") + b"\x01" + struct.pack("<Q", 4) +
            struct.pack("<QQQ", 6, 3, 12) +
            enc_str("P0(x0) :- E(x0, x1), !F(x0).\nO(x0) :- P0(x0).\n"
                    ".output O\n") +
            struct.pack("<I", 2))


def test_corpus_program_record_decoding():
    out = wal_dump.describe_record("calm.corpus", _corpus_program_payload(), 0)
    assert out == ("program seed=42 shape=semi-positive fragment=SP-Datalog "
                   "class=Mdistinct rules=2 ladder_rows=2 strategy=absence "
                   "bsp_supersteps=4 derived=6 conformant=yes")


def test_corpus_wellfounded_and_strategyless_rendering():
    payload = (b"\x01" + struct.pack("<Q", 7) + b"\x06" + b"\x01" +
               enc_str("unstratifiable") + enc_str("Mdisjoint") + enc_str("") +
               b"\x00" + struct.pack("<Q", 0) + struct.pack("<QQQ", 0, 0, 0) +
               enc_str("Win(x0) :- E(x0, x1), !Win(x1).\n.output O\n") +
               struct.pack("<I", 1))
    out = wal_dump.describe_record("calm.corpus", payload, 0)
    assert "shape=win-move" in out
    assert " wf " in out
    assert "strategy=-" in out
    assert "conformant=NO" in out


def test_corpus_divergence_record_decoding():
    payload = (b"\x02" + struct.pack("<Q", 99) + enc_str("bsp") +
               enc_str("supersteps diverged\nexpected 3\ngot 4"))
    out = wal_dump.describe_record("calm.corpus", payload, 1)
    assert out == ("divergence seed=99 stage=bsp "
                   "detail='supersteps diverged'")


def test_corpus_unknown_kind_is_reported_not_raised():
    out = wal_dump.describe_record("calm.corpus", b"\x07", 0)
    assert "undecodable" in out


def test_corpus_file_passes_strict_and_describes_records(tmp_path, capsys):
    # A corpus assembled from program + divergence records must survive a
    # --records --strict pass end-to-end (the same assertion the nightly
    # fuzz-survey job runs against the corpus the sweep persisted).
    div = (b"\x02" + struct.pack("<Q", 7) + enc_str("fragment") +
           enc_str("expected Datalog, got SP-Datalog"))
    path = tmp_path / "corpus.wal"
    path.write_bytes(make_file(b"calm.corpus",
                               [_corpus_program_payload(), div]))
    assert wal_dump.main([str(path), "--records", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "tag=calm.corpus" in out
    assert "program seed=42" in out
    assert "divergence seed=7 stage=fragment" in out


def test_undecodable_payload_is_reported_not_raised():
    out = wal_dump.describe_record("calm.sweepwal", b"\x63", 0)
    assert "undecodable" in out


def test_main_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.wal"
    clean.write_bytes(make_file(b"calm.test", [b"alpha"]))
    torn = tmp_path / "torn.wal"
    torn.write_bytes(make_file(b"calm.test", [b"alpha"]) + b"garbage!")
    corrupt = tmp_path / "corrupt.wal"
    corrupt.write_bytes(b"not a record file at all")

    assert wal_dump.main([str(clean)]) == 0
    assert wal_dump.main([str(clean), "--records"]) == 0
    # A torn tail is a crash artifact: reported, but only --strict fails it.
    assert wal_dump.main([str(torn)]) == 0
    assert wal_dump.main([str(torn), "--strict"]) == 1
    assert wal_dump.main([str(corrupt)]) == 1
    assert wal_dump.main([str(tmp_path / "missing.wal")]) == 1

    capsys.readouterr()
    assert wal_dump.main([str(torn)]) == 0
    assert "TORN TAIL" in capsys.readouterr().out
