"""Tests for median_bench.py: repetition collapse, aggregate filtering."""

import json
import os
import tempfile
import unittest

import median_bench


def entry(name, cpu, run_type="iteration"):
    e = {"name": name, "cpu_time": cpu, "time_unit": "ns"}
    if run_type != "iteration":
        e["run_type"] = run_type
    return e


class MedianBenchTest(unittest.TestCase):
    def test_picks_median_repetition(self):
        out = median_bench.median_entries(
            [entry("BM_A", t) for t in (5.0, 1.0, 3.0, 9.0, 7.0)])
        self.assertEqual([(e["name"], e["cpu_time"]) for e in out],
                         [("BM_A", 5.0)])

    def test_even_count_takes_lower_median(self):
        out = median_bench.median_entries(
            [entry("BM_A", t) for t in (4.0, 2.0, 8.0, 6.0)])
        self.assertEqual(out[0]["cpu_time"], 4.0)

    def test_aggregates_dropped_and_names_sorted(self):
        out = median_bench.median_entries([
            entry("BM_B", 2.0),
            entry("BM_A_mean", 99.0, run_type="aggregate"),
            entry("BM_A", 1.0),
        ])
        self.assertEqual([e["name"] for e in out], ["BM_A", "BM_B"])

    def test_main_round_trips_context(self):
        with tempfile.TemporaryDirectory() as d:
            raw = os.path.join(d, "raw.json")
            out = os.path.join(d, "out.json")
            with open(raw, "w") as f:
                json.dump({"context": {"host_name": "vm"},
                           "benchmarks": [entry("BM_A", t)
                                          for t in (3.0, 1.0, 2.0)]}, f)
            self.assertEqual(median_bench.main([raw, out]), 0)
            with open(out) as f:
                doc = json.load(f)
            self.assertEqual(doc["context"]["host_name"], "vm")
            self.assertEqual(len(doc["benchmarks"]), 1)
            self.assertEqual(doc["benchmarks"][0]["cpu_time"], 2.0)

    def test_incremental_overlay_names_collapse_like_any_other(self):
        # The baseline-refresh job feeds these exact names through the
        # collapse; pin them so a rename shows up here, not as a silently
        # skipped --strict gate.
        out = median_bench.median_entries(
            [entry("BM_EvalIncrementalOverlay/32", t) for t in (3.0, 1.0, 2.0)]
            + [entry("BM_FindViolationCanonical", 5.0)])
        self.assertEqual([(e["name"], e["cpu_time"]) for e in out],
                         [("BM_EvalIncrementalOverlay/32", 2.0),
                          ("BM_FindViolationCanonical", 5.0)])

    def test_bad_argv_is_usage_error(self):
        self.assertEqual(median_bench.main(["only-one"]), 2)


if __name__ == "__main__":
    unittest.main()
